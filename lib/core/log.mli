(** The execution log (paper §4.2, §6.1–6.2).

    Implementation threads append events as they run; the verification thread
    consumes them either offline (after the run) or online (through a
    {!subscribe}d listener).  Appends are serialized by an internal lock, so
    events appear in the log in a single global order — the order the checker
    treats as the order of occurrence.

    The {!level} controls instrumentation granularity and is what Table 2 of
    the paper varies:

    - [`None]: nothing is recorded (the "program alone" baseline);
    - [`Io]: call, return and commit actions (I/O refinement);
    - [`View]: additionally shared-variable writes and commit-block brackets
      (view refinement);
    - [`Full]: additionally shared reads and lock acquire/release (needed
      only by the reduction baseline). *)

type level = [ `None | `Io | `View | `Full ]

type t

val create : ?level:level -> unit -> t
(** Default level is [`View]. *)

val level : t -> level

(** [admits level event] tells whether [event] is recorded at [level]. *)
val admits : level -> Event.t -> bool

(** Fast-path guards so instrumentation can skip constructing events that
    the level would drop anyway. *)
val records_io : t -> bool

val records_writes : t -> bool
val records_reads : t -> bool

(** [append t ev] records [ev] if the level admits it, and notifies
    subscribers. *)
val append : t -> Event.t -> unit

val length : t -> int

(** [get t i] returns the [i]-th event appended.  Events are never removed,
    so indices are stable. *)
val get : t -> int -> Event.t

(** Events offered to {!append} but refused by the level — instrumentation
    fast paths usually avoid constructing these at all, so this counts only
    unguarded appends (surfaced by the pipeline metrics layer). *)
val dropped : t -> int

(** [events t] snapshots the current contents as a list.  Prefer {!fold} /
    {!iter} / {!snapshot} for traversals: they do not build a list under the
    log lock. *)
val events : t -> Event.t list

(** [snapshot t] copies the current contents into a fresh array in one
    locked pass — O(n) array blit rather than O(n) list construction. *)
val snapshot : t -> Event.t array

(** [fold f acc t] traverses the events appended so far in order, taking
    the lock only per fixed-size batch — [f] never runs under the log lock,
    and no whole-log copy is made.  Events appended concurrently behind the
    cursor are included; events ahead of it may or may not be. *)
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

(** Batched like {!fold}. *)
val iter : (Event.t -> unit) -> t -> unit

(** [subscribe t f] registers [f] to run synchronously, under the log lock,
    for every subsequently admitted event.  Used by online checking; [f]
    must be fast and must not touch the log. *)
val subscribe : t -> (Event.t -> unit) -> unit

(** {1 Persistence}

    The serialized form is one event per line, preceded by a [#]-comment
    header recording the {!level} the log was recorded at, so a round trip
    through {!to_channel}/{!of_channel} preserves both the events and the
    level. *)

val to_channel : out_channel -> t -> unit
val to_file : string -> t -> unit

(** Raised by {!of_channel} on malformed input; [line] is the 1-based line
    number of the offending event line, so tools can report a positioned
    [file:line] diagnostic instead of escaping a raw {!Repr.Parse_error}
    backtrace. *)
exception Parse_error of { line : int; message : string }

(** [of_channel ic] reads a serialized log back, at the level named by its
    header ([`Full] for headerless legacy input, so no event is ever
    dropped).  @raise Parse_error on malformed input. *)
val of_channel : in_channel -> t

val of_file : string -> t

(** [of_events evs] builds an in-memory log from a list (level [`Full]). *)
val of_events : Event.t list -> t
