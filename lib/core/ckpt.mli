(** Helpers for decoding checkpoint payloads carried as {!Repr.t} trees.

    Checkpoints travel through the same universal value type the logs use,
    so the binary codec and its CRC framing apply unchanged.  Every
    destructor below raises {!Malformed} instead of [Match_failure] so a
    corrupt-but-CRC-valid (or version-skewed) checkpoint surfaces as a
    recoverable condition: resume catches it and falls back to an earlier
    checkpoint or a full replay — never a wrong verdict. *)

exception Malformed of string

val malformed : ('a, unit, string, 'b) format4 -> 'a

val int : Repr.t -> int
val bool : Repr.t -> bool
val str : Repr.t -> string
val list : Repr.t -> Repr.t list
val pair : Repr.t -> Repr.t * Repr.t

(** Options encode as [List []] / [List [v]]. *)
val opt : Repr.t -> Repr.t option

val of_opt : Repr.t option -> Repr.t

(** [tagged tag payload] wraps a checkpoint payload with its format name
    (e.g. ["checker/1"], ["farm/1"]); [untag tag v] unwraps it, raising
    {!Malformed} on any other tag so format confusion is detected before
    any state is rebuilt. *)
val tagged : string -> Repr.t -> Repr.t

val untag : string -> Repr.t -> Repr.t
