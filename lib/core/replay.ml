module Tid = Vyrd_sched.Tid
module Vec = Vyrd_sched.Vec

exception Ill_formed of string

type block = { buffered : (string * Repr.t) Vec.t; mutable published : bool }

type t = {
  visible : (string, Repr.t) Hashtbl.t;
  blocks : (Tid.t, block) Hashtbl.t;
  dirty : (string, unit) Hashtbl.t;
}

let create () =
  { visible = Hashtbl.create 64; blocks = Hashtbl.create 8; dirty = Hashtbl.create 64 }

let publish t var v =
  let unchanged =
    match Hashtbl.find_opt t.visible var with Some v0 -> Repr.equal v0 v | None -> false
  in
  if not unchanged then begin
    Hashtbl.replace t.visible var v;
    Hashtbl.replace t.dirty var ()
  end

let write t tid var v =
  match Hashtbl.find_opt t.blocks tid with
  | Some b when not b.published -> Vec.push b.buffered (var, v)
  | Some _ | None -> publish t var v

let block_begin t tid =
  if Hashtbl.mem t.blocks tid then
    raise (Ill_formed (Tid.to_string tid ^ ": nested commit block"));
  Hashtbl.replace t.blocks tid { buffered = Vec.create (); published = false }

let drain t b =
  Vec.iter (fun (var, v) -> publish t var v) b.buffered;
  Vec.clear b.buffered;
  b.published <- true

let commit t tid =
  match Hashtbl.find_opt t.blocks tid with
  | Some b when not b.published -> drain t b
  | Some _ | None -> ()

let block_end t tid =
  match Hashtbl.find_opt t.blocks tid with
  | Some b ->
    if not b.published then drain t b;
    Hashtbl.remove t.blocks tid
  | None -> raise (Ill_formed (Tid.to_string tid ^ ": block end without begin"))

let lookup t var = Hashtbl.find_opt t.visible var
let fold f t acc = Hashtbl.fold f t.visible acc

let take_dirty t =
  let vars = Hashtbl.fold (fun var () acc -> var :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  vars

(* ---------------------------------------------------------- checkpoints *)

let snapshot t =
  let visible =
    Hashtbl.fold (fun var v acc -> (var, v) :: acc) t.visible []
    |> List.sort compare
    |> List.map (fun (var, v) -> Repr.Pair (Repr.Str var, v))
  in
  let blocks =
    Hashtbl.fold (fun tid b acc -> (tid, b) :: acc) t.blocks []
    |> List.sort compare
    |> List.map (fun (tid, b) ->
           Repr.List
             [
               Repr.Int tid;
               Repr.Bool b.published;
               Repr.List
                 (List.rev
                    (Vec.fold_left
                       (fun acc (var, v) -> Repr.Pair (Repr.Str var, v) :: acc)
                       [] b.buffered));
             ])
  in
  Repr.List [ Repr.List visible; Repr.List blocks ]

let restore t repr =
  match repr with
  | Repr.List [ Repr.List visible; Repr.List blocks ] ->
    Hashtbl.reset t.visible;
    Hashtbl.reset t.blocks;
    Hashtbl.reset t.dirty;
    List.iter
      (fun kv ->
        let var, v = Ckpt.pair kv in
        let var = Ckpt.str var in
        Hashtbl.replace t.visible var v;
        (* every restored variable starts dirty so an incremental view
           rebuilds its projections from scratch *)
        Hashtbl.replace t.dirty var ())
      visible;
    List.iter
      (fun bl ->
        match Ckpt.list bl with
        | [ tid; published; buffered ] ->
          let b = { buffered = Vec.create (); published = Ckpt.bool published } in
          List.iter
            (fun kv ->
              let var, v = Ckpt.pair kv in
              Vec.push b.buffered (Ckpt.str var, v))
            (Ckpt.list buffered);
          Hashtbl.replace t.blocks (Ckpt.int tid) b
        | _ -> Ckpt.malformed "replay snapshot: bad block entry")
      blocks
  | v -> Ckpt.malformed "replay snapshot: %s" (Repr.to_string v)
