(* The only timer primitive the stdlib offers without extra packages is
   [Unix.gettimeofday], a wall clock: an NTP step can move it backwards,
   which turned up as negative producer-stall readings in {!Ring}.  We
   monotonize it with a process-wide high-water mark: [now_ns] never
   returns a value smaller than any value it has already returned, in any
   domain.  Wall-clock steps forward still show up as (bounded) jumps —
   fine for cumulative stall accounting — but elapsed times can no longer
   be negative. *)

let last = Atomic.make 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()
