(** Checking outcomes and diagnostics. *)

type exec = {
  e_tid : Vyrd_sched.Tid.t;
  e_mid : string;
  e_args : Repr.t list;
  e_ret : Repr.t option;  (** [None] if the return had not been logged yet *)
}

type violation =
  | Io_violation of { exec : exec; commit_ordinal : int; reason : string }
      (** the specification cannot take the committed transition (§4) *)
  | Observer_violation of { exec : exec; window : int * int }
      (** no specification state in the observer's call–return window admits
          the observed return value (§4.3); [window] is the inclusive range
          of state ordinals tested *)
  | View_violation of {
      exec : exec;
      commit_ordinal : int;
      view_i : Repr.t;
      view_s : Repr.t;
    }  (** [viewI <> viewS] at a commit action (§5) *)
  | Invariant_violation of { exec : exec; commit_ordinal : int; invariant : string }
      (** a user-supplied runtime invariant over the replayed implementation
          state failed at a commit action (§7.2.1) *)
  | Ill_formed of { event : Event.t option; reason : string }
      (** the log violates well-formedness (§3.2) or the commit-point
          annotations are inconsistent (§4.1) *)

type stats = {
  events_processed : int;
  methods_checked : int;
      (** method executions whose check completed before the first
          violation — the paper's time-to-detection unit (Table 1) *)
  commits_resolved : int;
  per_method : (string * int) list;
      (** executions checked per method name, sorted by name *)
  queue_high_water : int;
      (** peak occupancy of the event queue that fed this checker — [0] for
          offline checking (no queue); bounded by the configured capacity
          for {!Online} and the pipeline farm *)
}

type outcome = Pass | Fail of violation

type t = { outcome : outcome; stats : stats }

val is_pass : t -> bool
val pp_exec : Format.formatter -> exec -> unit
val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit

(** Short tag for tables: ["pass"], ["io"], ["observer"], ["view"],
    ["ill-formed"]. *)
val tag : t -> string
