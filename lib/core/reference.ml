module Tid = Vyrd_sched.Tid

type exec = {
  x_tid : Tid.t;
  x_mid : string;
  x_args : Repr.t list;
  x_ret : Repr.t;
  x_kind : Spec.kind;
  x_call_at : int;
  x_ret_at : int;
  x_commit_at : int option;  (* log index of the commit action, if any *)
}

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Phase 1: structure the log into method executions (§3.2 well-formedness
   and the §4.1 commit-annotation rules). *)
let executions (module Sp : Spec.S) events =
  let open_calls : (Tid.t, string * Repr.t list * int * int option) Hashtbl.t =
    Hashtbl.create 16
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | ev :: rest -> (
      match ev with
      | Event.Call { tid; mid; args } ->
        if Hashtbl.mem open_calls tid then
          fail "event %d: %s calls %s inside another execution" i
            (Tid.to_string tid) mid
        else (
          match Sp.kind mid with
          | _ ->
            Hashtbl.replace open_calls tid (mid, args, i, None);
            go (i + 1) acc rest
          | exception Invalid_argument m -> Error m)
      | Event.Commit { tid } -> (
        match Hashtbl.find_opt open_calls tid with
        | None -> fail "event %d: %s commits outside any execution" i (Tid.to_string tid)
        | Some (mid, _, _, Some _) ->
          fail "event %d: second commit in %s's execution of %s" i (Tid.to_string tid)
            mid
        | Some (mid, args, call_at, None) ->
          if Sp.kind mid = Spec.Observer then
            fail "event %d: observer %s carries a commit annotation" i mid
          else begin
            Hashtbl.replace open_calls tid (mid, args, call_at, Some i);
            go (i + 1) acc rest
          end)
      | Event.Return { tid; mid; value } -> (
        match Hashtbl.find_opt open_calls tid with
        | None ->
          fail "event %d: %s returns from %s without a call" i (Tid.to_string tid) mid
        | Some (mid', _, _, _) when mid' <> mid ->
          fail "event %d: %s returns from %s while executing %s" i (Tid.to_string tid)
            mid mid'
        | Some (_, args, call_at, commit_at) ->
          Hashtbl.remove open_calls tid;
          let x =
            { x_tid = tid; x_mid = mid; x_args = args; x_ret = value;
              x_kind = Sp.kind mid; x_call_at = call_at; x_ret_at = i;
              x_commit_at = commit_at }
          in
          go (i + 1) (x :: acc) rest)
      | Event.Write _ | Event.Block_begin _ | Event.Block_end _ | Event.Read _
      | Event.Acquire _ | Event.Release _ -> go (i + 1) acc rest)
  in
  go 0 [] events

(* The shadow state after the first [upto] events, rebuilt from scratch
   (exclusive bound). *)
let shadow_at events ~upto =
  let replay = Replay.create () in
  List.iteri
    (fun i ev ->
      if i < upto then
        match ev with
        | Event.Write { tid; var; value } -> Replay.write replay tid var value
        | Event.Block_begin { tid } -> Replay.block_begin replay tid
        | Event.Block_end { tid } -> Replay.block_end replay tid
        | Event.Commit { tid } -> Replay.commit replay tid
        | _ -> ())
    events;
  replay

(* Number of elements of the sorted array [a] strictly below [x]. *)
let count_below a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let check ?view log spec =
  let module Sp = (val spec : Spec.S) in
  let events = Log.events log in
  let* execs = executions (module Sp) events in
  let committed =
    List.filter (fun x -> x.x_commit_at <> None) execs
    |> List.sort (fun a b -> compare a.x_commit_at b.x_commit_at)
  in
  (* Phase 2: fold the specification along the witness interleaving,
     checking viewI = viewS at every commit when a view is given. *)
  let* states =
    (* states.(i) = state after i commits; returned in reverse fold order *)
    List.fold_left
      (fun acc x ->
        let* states = acc in
        let current = List.hd states in
        match Sp.apply current ~mid:x.x_mid ~args:x.x_args ~ret:x.x_ret with
        | Error reason ->
          fail "commit of %s %s: %s" (Tid.to_string x.x_tid) x.x_mid reason
        | Ok next ->
          let next = Sp.snapshot next in
          let* () =
            match view with
            | None -> Ok ()
            | Some v ->
              let commit_at = Option.get x.x_commit_at in
              let replay =
                (* include the commit event itself so the committing
                   thread's block is published *)
                shadow_at events ~upto:(commit_at + 1)
              in
              let view_i = View.recompute (View.make_eval v) replay in
              let view_s = Sp.view next in
              if Repr.equal view_i view_s then Ok ()
              else
                fail "view mismatch at commit of %s %s: viewI %s, viewS %s"
                  (Tid.to_string x.x_tid) x.x_mid (Repr.to_string view_i)
                  (Repr.to_string view_s)
          in
          Ok (next :: states))
      (Ok [ Sp.snapshot (Sp.init ()) ])
      committed
  in
  let states = Array.of_list (List.rev states) in
  (* commit ordinal of the i-th committed execution = i + 1; map a log
     position to the number of commits at or before it *)
  let commit_positions =
    Array.of_list (List.map (fun x -> Option.get x.x_commit_at) committed)
  in
  let commits_before pos = count_below commit_positions pos in
  (* Phase 3: window checks for observers and non-committing executions. *)
  let check_window x =
    let lo = commits_before x.x_call_at in
    let hi = commits_before x.x_ret_at in
    let rec any i =
      i <= hi
      && (Sp.observe states.(i) ~mid:x.x_mid ~args:x.x_args ~ret:x.x_ret
         || any (i + 1))
    in
    if any lo then Ok ()
    else
      fail "no state in window [%d..%d] admits %s %s -> %s" lo hi
        (Tid.to_string x.x_tid) x.x_mid (Repr.to_string x.x_ret)
  in
  List.fold_left
    (fun acc x ->
      let* () = acc in
      if x.x_commit_at = None then check_window x else Ok ())
    (Ok ()) execs

let agrees_with_checker ?view log spec =
  let reference = Result.is_ok (check ?view log spec) in
  let fast =
    let mode = match view with None -> `Io | Some _ -> `View in
    Report.is_pass (Checker.check ~mode ?view log spec)
  in
  reference = fast

(* ------------------------------------------------------- indexed oracle

   [check_indexed] predicts not only the verdict but the exact log index at
   which the incremental checker first reports a violation, from first
   principles rather than by replaying the checker's own machinery.

   The detection model.  The checker resolves specification transitions in
   commit order, but a transition needs the method's return value, so commit
   ordinal [k] resolves at log index [r_k] = max over ordinals [j <= k] of
   the return position of [j]'s execution (a "resolution cascade" runs at
   each committed execution's return event).  Hence:

   - an Io or View violation at ordinal [k] is detected at [r_k];
   - an observer (or non-committing mutator) whose window is [lo..hi]
     fails at [max ret_at r_hi] — its own return, or the point where the
     last state of its window materialises — and only if every state in
     [lo..hi] rejects it, and commit [hi] actually resolves successfully
     (commits at or past the first unreturned commit, or at or past a
     failing ordinal, never resolve, so such observers pend forever);
   - a structural (ill-formedness) error stops the scan at its own index,
     and every refinement candidate derives from events strictly before it.

   Within one event the cascade resolves ordinal [j], then advances
   observers with window end [j], then resolves [j+1]; ties are therefore
   broken by (log index, commit ordinal, commit-before-observer). *)

type failure = { f_index : int; f_kind : string; f_detail : string }

let check_indexed ?view log spec =
  let module Sp = (val spec : Spec.S) in
  let events = Log.events log in
  let earr = Array.of_list events in
  let n = Array.length earr in
  (* Indexed well-formedness scan with a live shadow replay, mirroring the
     order of the checker's per-event checks; stops at the first error. *)
  let open_calls : (Tid.t, string * Repr.t list * int * int option ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let execs = ref [] in
  let commit_list = ref [] in
  let replay = Replay.create () in
  let struct_err = ref None in
  let stop = ref false in
  let i = ref 0 in
  while (not !stop) && !i < n do
    let bad fmt =
      Printf.ksprintf
        (fun m ->
          struct_err := Some (!i, m);
          stop := true)
        fmt
    in
    (try
       match earr.(!i) with
       | Event.Call { tid; mid; args } -> (
         match Hashtbl.find_opt open_calls tid with
         | Some (mid', _, _, _) ->
           bad "%s calls %s inside an execution of %s" (Tid.to_string tid) mid mid'
         | None -> (
           match Sp.kind mid with
           | _ -> Hashtbl.replace open_calls tid (mid, args, !i, ref None)
           | exception Invalid_argument m -> bad "%s" m))
       | Event.Commit { tid } -> (
         match Hashtbl.find_opt open_calls tid with
         | None -> bad "%s commits outside any execution" (Tid.to_string tid)
         | Some (mid, _, _, commit_at) ->
           if Sp.kind mid = Spec.Observer then
             bad "observer %s carries a commit annotation" mid
           else if !commit_at <> None then
             bad "second commit in %s's execution of %s" (Tid.to_string tid) mid
           else begin
             Replay.commit replay tid;
             commit_at := Some !i;
             commit_list := !i :: !commit_list
           end)
       | Event.Return { tid; mid; value } -> (
         match Hashtbl.find_opt open_calls tid with
         | None -> bad "%s returns from %s without a call" (Tid.to_string tid) mid
         | Some (mid', _, _, _) when mid' <> mid ->
           bad "%s returns from %s while executing %s" (Tid.to_string tid) mid mid'
         | Some (_, args, call_at, commit_at) ->
           Hashtbl.remove open_calls tid;
           execs :=
             { x_tid = tid; x_mid = mid; x_args = args; x_ret = value;
               x_kind = Sp.kind mid; x_call_at = call_at; x_ret_at = !i;
               x_commit_at = !commit_at }
             :: !execs)
       | Event.Write { tid; var; value } -> Replay.write replay tid var value
       | Event.Block_begin { tid } -> Replay.block_begin replay tid
       | Event.Block_end { tid } -> Replay.block_end replay tid
       | Event.Read _ | Event.Acquire _ | Event.Release _ -> ()
     with Replay.Ill_formed reason -> bad "%s" reason);
    incr i
  done;
  let execs = List.rev !execs in
  let commit_ats = Array.of_list (List.rev !commit_list) in
  let m = Array.length commit_ats in
  (* Map commit ordinals (1-based, in commit-event order) to their
     executions; an ordinal with no execution never returned. *)
  let exec_of_ord = Array.make (m + 1) None in
  List.iter
    (fun x ->
      match x.x_commit_at with
      | Some c -> exec_of_ord.(count_below commit_ats c + 1) <- Some x
      | None -> ())
    execs;
  let resolvable =
    let k = ref 0 in
    while !k < m && exec_of_ord.(!k + 1) <> None do
      incr k
    done;
    !k
  in
  (* r.(k) = log index at which ordinal k's transition resolves. *)
  let r = Array.make (resolvable + 1) (-1) in
  for k = 1 to resolvable do
    r.(k) <- max r.(k - 1) (Option.get exec_of_ord.(k)).x_ret_at
  done;
  (* Witness fold up to the first failing ordinal. *)
  let states = Array.make (resolvable + 1) (Sp.snapshot (Sp.init ())) in
  let fold_fail = ref None in
  let k_stop = ref (resolvable + 1) in
  let k = ref 1 in
  while !fold_fail = None && !k <= resolvable do
    let x = Option.get exec_of_ord.(!k) in
    (match Sp.apply states.(!k - 1) ~mid:x.x_mid ~args:x.x_args ~ret:x.x_ret with
    | Error reason ->
      fold_fail :=
        Some
          ( r.(!k), !k, "io",
            Printf.sprintf "commit %d of %s %s: %s" !k (Tid.to_string x.x_tid)
              x.x_mid reason );
      k_stop := !k
    | Ok next ->
      let next = Sp.snapshot next in
      states.(!k) <- next;
      (match view with
      | None -> ()
      | Some v ->
        let commit_at = Option.get x.x_commit_at in
        let shadow = shadow_at events ~upto:(commit_at + 1) in
        let view_i = View.recompute (View.make_eval v) shadow in
        let view_s = Sp.view next in
        if not (Repr.equal view_i view_s) then begin
          fold_fail :=
            Some
              ( r.(!k), !k, "view",
                Printf.sprintf "view mismatch at commit %d of %s %s: viewI %s, viewS %s"
                  !k (Tid.to_string x.x_tid) x.x_mid (Repr.to_string view_i)
                  (Repr.to_string view_s) );
          k_stop := !k
        end));
    incr k
  done;
  (* Observers advance only past successfully resolved commits. *)
  let obs_limit = !k_stop - 1 in
  let candidates = ref [] in
  (match !fold_fail with
  | Some (idx, ord, kind, detail) -> candidates := [ (idx, ord, 0, kind, detail) ]
  | None -> ());
  (match !struct_err with
  | Some (idx, detail) ->
    candidates := (idx, max_int, 0, "ill-formed", detail) :: !candidates
  | None -> ());
  List.iter
    (fun x ->
      if x.x_commit_at = None then begin
        let lo = count_below commit_ats x.x_call_at in
        let hi = count_below commit_ats x.x_ret_at in
        if hi <= obs_limit then begin
          let rec all_reject j =
            j > hi
            || ((not (Sp.observe states.(j) ~mid:x.x_mid ~args:x.x_args ~ret:x.x_ret))
               && all_reject (j + 1))
          in
          if all_reject lo then begin
            let idx = if hi = 0 then x.x_ret_at else max x.x_ret_at r.(hi) in
            candidates :=
              ( idx, hi, 1, "observer",
                Printf.sprintf "no state in window [%d..%d] admits %s %s -> %s" lo hi
                  (Tid.to_string x.x_tid) x.x_mid (Repr.to_string x.x_ret) )
              :: !candidates
          end
        end
      end)
    execs;
  match
    List.sort
      (fun (a1, a2, a3, _, _) (b1, b2, b3, _, _) -> compare (a1, a2, a3) (b1, b2, b3))
      !candidates
  with
  | [] -> Ok ()
  | (idx, _, _, kind, detail) :: _ ->
    Error { f_index = idx; f_kind = kind; f_detail = detail }

let agrees_with_checker_indexed ?view log spec =
  let mode = match view with None -> `Io | Some _ -> `View in
  let report, idx = Checker.check_indexed ~mode ?view log spec in
  match (check_indexed ?view log spec, Report.is_pass report) with
  | Ok (), true -> idx = None
  | Error f, false -> idx = Some f.f_index && Report.tag report = f.f_kind
  | _ -> false
