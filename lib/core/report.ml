module Tid = Vyrd_sched.Tid

type exec = {
  e_tid : Tid.t;
  e_mid : string;
  e_args : Repr.t list;
  e_ret : Repr.t option;
}

type violation =
  | Io_violation of { exec : exec; commit_ordinal : int; reason : string }
  | Observer_violation of { exec : exec; window : int * int }
  | View_violation of {
      exec : exec;
      commit_ordinal : int;
      view_i : Repr.t;
      view_s : Repr.t;
    }
  | Invariant_violation of { exec : exec; commit_ordinal : int; invariant : string }
  | Ill_formed of { event : Event.t option; reason : string }

type stats = {
  events_processed : int;
  methods_checked : int;
  commits_resolved : int;
  per_method : (string * int) list;
  queue_high_water : int;
}
type outcome = Pass | Fail of violation
type t = { outcome : outcome; stats : stats }

let is_pass t = t.outcome = Pass

let pp_exec ppf e =
  Fmt.pf ppf "%s %s(%a)%a" (Tid.to_string e.e_tid) e.e_mid
    Fmt.(list ~sep:comma Repr.pp)
    e.e_args
    Fmt.(option (fun ppf v -> Fmt.pf ppf " -> %a" Repr.pp v))
    e.e_ret

let pp_violation ppf = function
  | Io_violation { exec; commit_ordinal; reason } ->
    Fmt.pf ppf
      "@[<v 2>I/O refinement violation at commit #%d:@ execution: %a@ reason: %s@]"
      commit_ordinal pp_exec exec reason
  | Observer_violation { exec; window = lo, hi } ->
    Fmt.pf ppf
      "@[<v 2>I/O refinement violation (observer):@ execution: %a@ no \
       specification state in window [%d..%d] admits the return value@]"
      pp_exec exec lo hi
  | View_violation { exec; commit_ordinal; view_i; view_s } ->
    Fmt.pf ppf
      "@[<v 2>view refinement violation at commit #%d:@ execution: %a@ viewI: \
       %a@ viewS: %a@]"
      commit_ordinal pp_exec exec Repr.pp view_i Repr.pp view_s
  | Invariant_violation { exec; commit_ordinal; invariant } ->
    Fmt.pf ppf
      "@[<v 2>invariant %S violated at commit #%d:@ execution: %a@]" invariant
      commit_ordinal pp_exec exec
  | Ill_formed { event; reason } ->
    Fmt.pf ppf "@[<v 2>ill-formed log:@ %s%a@]" reason
      Fmt.(option (fun ppf ev -> Fmt.pf ppf "@ at event: %a" Event.pp ev))
      event

let pp ppf t =
  (match t.outcome with
  | Pass -> Fmt.pf ppf "PASS"
  | Fail v -> Fmt.pf ppf "FAIL: %a" pp_violation v);
  Fmt.pf ppf "@ (%d events, %d methods checked, %d commits%t)"
    t.stats.events_processed t.stats.methods_checked t.stats.commits_resolved
    (fun ppf ->
      if t.stats.queue_high_water > 0 then
        Fmt.pf ppf ", queue high-water %d" t.stats.queue_high_water)

let tag t =
  match t.outcome with
  | Pass -> "pass"
  | Fail (Io_violation _) -> "io"
  | Fail (Observer_violation _) -> "observer"
  | Fail (View_violation _) -> "view"
  | Fail (Invariant_violation _) -> "invariant"
  | Fail (Ill_formed _) -> "ill-formed"
