type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

(* The checker compares a viewI against a viewS at every commit; shortcut
   on physical equality first so shared subtrees (persistent spec states,
   interned strings) don't pay a full structural walk. *)
let equal a b = a == b || a = b
let compare a b = if a == b then 0 else Stdlib.compare a b

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "@[<hov 1>(%a,@ %a)@]" pp a pp b
  | List vs -> Fmt.pf ppf "@[<hov 1>[%a]@]" Fmt.(list ~sep:semi pp) vs

let to_string v = Fmt.str "%a" pp v
let unit = Unit

(* Leaves are interned so the hot path (views rebuilt at every commit)
   reuses shared nodes instead of boxing the same small scalars millions of
   times; [equal]'s physical-equality shortcut then skips them for free. *)
let true_ = Bool true
let false_ = Bool false
let bool b = if b then true_ else false_
let interned_ints = Array.init 256 (fun i -> Int i)
let int i = if i >= 0 && i < 256 then Array.unsafe_get interned_ints i else Int i
let str s = Str s
let pair a b = Pair (a, b)
let list vs = List vs
let of_bytes b = Str (Bytes.to_string b)
let success = Str "success"
let failure = Str "failure"
let is_success v = equal v success
let sorted_list vs = List (List.sort compare vs)

(* Textual serialization ------------------------------------------------ *)

exception Parse_error of string

let rec emit buf = function
  | Unit -> Buffer.add_char buf 'u'
  | Bool true -> Buffer.add_char buf 't'
  | Bool false -> Buffer.add_char buf 'f'
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s ->
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 32 || Char.code c > 126 ->
          Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | Pair (a, b) ->
    Buffer.add_string buf "(P ";
    emit buf a;
    Buffer.add_char buf ' ';
    emit buf b;
    Buffer.add_char buf ')'
  | List vs ->
    Buffer.add_string buf "(L";
    List.iter
      (fun v ->
        Buffer.add_char buf ' ';
        emit buf v)
      vs;
    Buffer.add_char buf ')'

let to_text v =
  let buf = Buffer.create 32 in
  emit buf v;
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail "invalid hex digit %C" c

let rec skip_ws s i = if i < String.length s && s.[i] = ' ' then skip_ws s (i + 1) else i

let parse_string s i =
  let buf = Buffer.create 16 in
  let n = String.length s in
  let rec go i =
    if i >= n then fail "unterminated string"
    else
      match s.[i] with
      | '"' -> (Buffer.contents buf, i + 1)
      | '\\' ->
        if i + 1 >= n then fail "dangling escape"
        else begin
          match s.[i + 1] with
          | '"' ->
            Buffer.add_char buf '"';
            go (i + 2)
          | '\\' ->
            Buffer.add_char buf '\\';
            go (i + 2)
          | 'n' ->
            Buffer.add_char buf '\n';
            go (i + 2)
          | 'r' ->
            Buffer.add_char buf '\r';
            go (i + 2)
          | 'x' ->
            if i + 3 >= n then fail "truncated \\x escape"
            else begin
              let c = (hex_val s.[i + 2] * 16) + hex_val s.[i + 3] in
              Buffer.add_char buf (Char.chr c);
              go (i + 4)
            end
          | c -> fail "unknown escape \\%C" c
        end
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go i

let parse_int s i =
  let n = String.length s in
  let j = if i < n && s.[i] = '-' then i + 1 else i in
  let rec scan j = if j < n && s.[j] >= '0' && s.[j] <= '9' then scan (j + 1) else j in
  let j' = scan j in
  if j' = j then fail "expected digits at %d" i
  else (int_of_string (String.sub s i (j' - i)), j')

let rec of_text_sub s i =
  let i = skip_ws s i in
  if i >= String.length s then fail "unexpected end of input"
  else
    match s.[i] with
    | 'u' -> (Unit, i + 1)
    | 't' -> (Bool true, i + 1)
    | 'f' -> (Bool false, i + 1)
    | '"' ->
      let str, j = parse_string s (i + 1) in
      (Str str, j)
    | '-' | '0' .. '9' ->
      let v, j = parse_int s i in
      (Int v, j)
    | '(' -> parse_compound s (i + 1)
    | c -> fail "unexpected character %C at %d" c i

and parse_compound s i =
  if i >= String.length s then fail "unexpected end in compound"
  else
    match s.[i] with
    | 'P' ->
      let a, j = of_text_sub s (i + 1) in
      let b, j = of_text_sub s j in
      let j = skip_ws s j in
      if j < String.length s && s.[j] = ')' then (Pair (a, b), j + 1)
      else fail "expected ) after pair at %d" j
    | 'L' ->
      let rec elems acc j =
        let j = skip_ws s j in
        if j >= String.length s then fail "unterminated list"
        else if s.[j] = ')' then (List (List.rev acc), j + 1)
        else
          let v, j' = of_text_sub s j in
          elems (v :: acc) j'
      in
      elems [] (i + 1)
    | c -> fail "unknown compound tag %C" c

let of_text s =
  let v, j = of_text_sub s 0 in
  let j = skip_ws s j in
  if j <> String.length s then fail "trailing garbage at %d" j else v
