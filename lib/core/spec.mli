(** Executable specifications (paper §3).

    A specification is a method-atomic, deterministic state transition
    system: given a state, a method, its arguments and its observed return
    value, there is at most one successor state.  Return-value
    nondeterminism is allowed (e.g. [Insert] may succeed or terminate
    exceptionally) — determinism is required only {e given} the return
    value, which the checker supplies by looking ahead in the log. *)

type kind =
  | Mutator  (** may modify abstract state; carries a commit annotation *)
  | Observer
      (** never modifies abstract state; not annotated — checked against
          every specification state in its call–return window (§4.3) *)
  | Internal
      (** housekeeping work of a data-structure worker thread (e.g. a
          compression step): treated like a mutator whose transition must
          leave the abstract view unchanged (§7.2.3) *)

val pp_kind : Format.formatter -> kind -> unit

module type S = sig
  type state

  val name : string
  val init : unit -> state

  (** [kind mid] classifies public method [mid].
      @raise Invalid_argument for unknown methods. *)
  val kind : string -> kind

  (** [apply state ~mid ~args ~ret] takes the unique transition of mutator
      (or internal) method [mid] that returns [ret], or explains why no such
      transition exists. *)
  val apply : state -> mid:string -> args:Repr.t list -> ret:Repr.t -> (state, string) result

  (** [observe state ~mid ~args ~ret] tells whether observer [mid] may
      return [ret] in [state]. *)
  val observe : state -> mid:string -> args:Repr.t list -> ret:Repr.t -> bool

  (** [view state] is the canonical abstract contents [viewS] (§5). *)
  val view : state -> Repr.t

  (** [snapshot state] returns a state unaffected by later [apply] calls.
      The identity for persistent states; a deep copy for specs built from
      atomized imperative code (§4.4). *)
  val snapshot : state -> state

  (** [save state] serializes the state for a checkpoint, or [None] when
      this specification does not support checkpointing (then the whole
      checker snapshot degrades to [None] and resume falls back to full
      replay).  Must satisfy [load (save s) ≡ s] up to [view]/[apply]/
      [observe] equivalence. *)
  val save : state -> Repr.t option

  (** [load repr] rebuilds a state serialized by [save].
      @raise Invalid_argument when [repr] is not a value [save] produces —
      resume treats that checkpoint as unusable and falls back. *)
  val load : Repr.t -> state
end

type t = (module S)
