(** Implementation-side view definitions ([viewI], paper §5, §6.3–6.4).

    A view extracts the canonical abstract contents from the shadow replay
    of the implementation's shared state.  [Full] recomputes the whole view
    at every commit; [Keyed] declares which abstract key each shared
    variable contributes to, so only keys touched since the last commit are
    recomputed and re-compared — the incremental scheme of §6.4.  [Pair]
    composes the views of two structures living in the same log (their
    variable spaces must be disjoint); it matches a specification composed
    with {!Spec_compose}. *)

type lookup = string -> Repr.t option

type keyed = {
  keys_of_var : string -> Repr.t list;
      (** abstract keys a write to this variable may affect (often one) *)
  project : lookup -> Repr.t -> Repr.t option;
      (** current value at a key, [None] when absent from the structure *)
}

type t =
  | Full of (lookup -> Repr.t)
  | Keyed of keyed
  | Pair of t * t

(** [canonical_of_assoc kvs] sorts an association list into the canonical
    [List [Pair (k, v); ...]] form both view sides use. *)
val canonical_of_assoc : (Repr.t * Repr.t) list -> Repr.t

(** Evaluator state for a view over a replay. *)
type eval

val make_eval : t -> eval

(** [recompute eval replay] returns the current [viewI], recomputing only
    dirty keys in the [Keyed] case.  Consumes the replay's dirty set. *)
val recompute : eval -> Replay.t -> Repr.t

(** Number of key projections performed so far ([Keyed] components only) —
    exposed for the incremental-view ablation benchmark. *)
val projections : eval -> int

(** [reset eval] drops every cached [Keyed] projection table.  Used when a
    checker restores from a checkpoint: with all replay variables marked
    dirty, the next {!recompute} rebuilds the tables from the restored
    replay instead of trusting stale entries. *)
val reset : eval -> unit
