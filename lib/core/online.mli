(** Online refinement checking (paper §4.2, Table 3).

    [start log spec] subscribes to [log] and spawns a verification domain
    that feeds every subsequently appended event to a {!Checker.t}
    concurrently with the instrumented program, mirroring the paper's
    separate verification thread reading the log tail.

    The hand-off queue is a bounded {!Ring}: when the verifier falls behind
    by more than [capacity] events, the instrumented program blocks at the
    append until the verifier catches up (backpressure), so a fast producer
    can no longer grow the queue without limit.  The peak occupancy is
    recorded in the returned report's [queue_high_water].

    Call {!finish} after the program completes: it closes the stream, joins
    the verifier and returns the report. *)

type t

(** @param capacity bound on the hand-off queue (default 32768). *)
val start : ?capacity:int -> ?mode:Checker.mode -> ?view:View.t -> Log.t -> Spec.t -> t

val finish : t -> Report.t

(** Peak queue occupancy so far; readable while the run is live. *)
val high_water : t -> int
