(* Routing: a method belongs to the left component iff [A.kind] accepts it;
   otherwise it is handed to the right component (whose [kind] raises for
   genuinely unknown names). *)

let pair (speca : Spec.t) (specb : Spec.t) : Spec.t =
  let module A = (val speca) in
  let module B = (val specb) in
  let module P = struct
    type state = A.state * B.state

    let name = A.name ^ " * " ^ B.name
    let init () = (A.init (), B.init ())

    let left mid =
      match A.kind mid with _ -> true | exception Invalid_argument _ -> false

    let kind mid = if left mid then A.kind mid else B.kind mid

    let apply (sa, sb) ~mid ~args ~ret =
      if left mid then
        Result.map (fun sa' -> (sa', sb)) (A.apply sa ~mid ~args ~ret)
      else Result.map (fun sb' -> (sa, sb')) (B.apply sb ~mid ~args ~ret)

    let observe (sa, sb) ~mid ~args ~ret =
      if left mid then A.observe sa ~mid ~args ~ret else B.observe sb ~mid ~args ~ret

    let view (sa, sb) = Repr.Pair (A.view sa, B.view sb)
    let snapshot (sa, sb) = (A.snapshot sa, B.snapshot sb)

    let save (sa, sb) =
      match (A.save sa, B.save sb) with
      | Some ra, Some rb -> Some (Repr.Pair (ra, rb))
      | _ -> None

    let load = function
      | Repr.Pair (ra, rb) -> (A.load ra, B.load rb)
      | v -> invalid_arg (name ^ ": bad saved state " ^ Repr.to_string v)
  end in
  (module P)

let pair_views va vb = View.Pair (va, vb)
