(** Reference refinement checker — a direct, clarity-first transcription of
    the paper's definitions (§4, §5), used as a test oracle.

    Unlike {!Checker}, which resolves everything incrementally in one pass,
    this implementation works in whole phases over a complete log:

    + match calls and returns into method executions and collect the commit
      actions (rejecting ill-formed logs);
    + sort committed executions by commit position — the witness
      interleaving — and fold the specification over it;
    + for view refinement, rebuild the shadow state {e from scratch} for
      every commit prefix and compare [viewI] with [viewS];
    + validate every non-committing execution against each specification
      state in its window.

    It is quadratic and allocation-happy by design; its only job is to be
    obviously faithful to the paper so the fast checker can be validated
    against it ([test/test_oracle.ml]). *)

(** [check ?view log spec] returns [Ok ()] or a description of the first
    problem found (phase order, not log order — agreement with {!Checker}
    is on pass/fail only). *)
val check : ?view:View.t -> Log.t -> Spec.t -> (unit, string) result

(** Convenience: agreement on the pass/fail verdict with a {!Checker} run
    in the same mode. *)
val agrees_with_checker : ?view:View.t -> Log.t -> Spec.t -> bool

(** A predicted first detection: the log index at which the incremental
    checker first reports, a kind string matching {!Report.tag} (["io"],
    ["view"], ["observer"] or ["ill-formed"]), and a human-readable
    description. *)
type failure = { f_index : int; f_kind : string; f_detail : string }

(** [check_indexed ?view log spec] predicts the incremental checker's exact
    first detection point from first principles: commit ordinal [k]'s
    transition resolves at the running-max return position [r_k] of commits
    [1..k], an all-rejecting observer window [lo..hi] fails at
    [max ret_at r_hi] provided commit [hi] resolves successfully, and
    structural errors stop the scan at their own index.  Ties within one
    event resolve by commit ordinal, commits before observers.  The index
    agrees with {!Checker.check_indexed} (and with a single-shard
    {!Farm}'s [sr_fail_index]); invariant checking is not modelled. *)
val check_indexed : ?view:View.t -> Log.t -> Spec.t -> (unit, failure) result

(** Full agreement — verdict, detection index, and violation kind — with a
    {!Checker.check_indexed} run in the same mode. *)
val agrees_with_checker_indexed : ?view:View.t -> Log.t -> Spec.t -> bool
