(** Instrumentation helpers (paper §6.1).

    A {!ctx} couples the scheduling substrate with a log.  Data structures
    built on a [ctx] get, with no further effort:
    - call/return/commit records for their public methods;
    - logged shared cells whose writes reach the log atomically with the
      store (the paper's requirement that "each logged action be performed
      atomically with the corresponding log update", §4.2);
    - scheduling points on every shared access, which is what lets the
      deterministic engine explore racy interleavings. *)

type ctx = { sched : Vyrd_sched.Sched.t; log : Log.t }

val make : Vyrd_sched.Sched.t -> Log.t -> ctx

(** {1 Method boundaries} *)

val call : ctx -> string -> Repr.t list -> unit
val return_ : ctx -> string -> Repr.t -> unit

(** [commit ctx] marks the commit action of the calling thread's current
    method execution (§4.1). *)
val commit : ctx -> unit

val block_begin : ctx -> unit
val block_end : ctx -> unit

(** [with_block ctx f] brackets [f] in a commit block (§5.2). *)
val with_block : ctx -> (unit -> 'a) -> 'a

(** Seeded mutant ({!Vyrd_faults.Faults}): when armed, {!with_block} emits no
    brackets, so the blocked writes replay one by one instead of atomically
    at the commit. *)
val fault_dropped_block : Vyrd_faults.Faults.t

(** [op ctx mid args body] logs the call, runs [body], logs and returns its
    result.  The standard wrapper for a public method. *)
val op : ctx -> string -> Repr.t list -> (unit -> Repr.t) -> Repr.t

(** {1 Shared state} *)

module Cell : sig
  type 'a t

  (** [make ctx ~name ~repr init] creates a logged shared cell: every {!set}
      appends a [Write] event carrying [repr value].  [name] is the
      variable identifier seen by the replayer — it should be stable and
      unique, e.g. ["A[3].elt"]. *)
  val make : ctx -> name:string -> repr:('a -> Repr.t) -> 'a -> 'a t

  (** A shared cell outside [supp(view)]: scheduling points but no log
      traffic. *)
  val make_silent : ctx -> name:string -> 'a -> 'a t

  (** [get c]: scheduling point, then read (logged as [Read] at [`Full]). *)
  val get : 'a t -> 'a

  (** [set c v]: scheduling point, then store coupled atomically with its
      [Write] record. *)
  val set : 'a t -> 'a -> unit

  (** [set_and_commit c v] stores [v] and records the [Write] and the
      [Commit] of the current method execution as one atomic step — the
      usual shape of a mutator's commit action ("an atomic write to a shared
      variable", §4.3). *)
  val set_and_commit : 'a t -> 'a -> unit

  (** Read without scheduling point or logging (initialization, assertions,
      post-run inspection). *)
  val peek : 'a t -> 'a

  (** Write without scheduling point; the [Write] record is still appended
      for logged cells (used by initialization that must be visible to the
      replayer). *)
  val poke : 'a t -> 'a -> unit

  val name : _ t -> string
end

(** {1 Coarse-grained logging (§6.2)}

    For data-structure-specific log entries: when a whole group of low-level
    actions is known to be atomic (e.g. a node write that goes through a
    separately-verified cache), it can be logged as a single [Write]. *)

(** [log_write ctx ~var v] appends a [Write] event for [var]. *)
val log_write : ctx -> var:string -> Repr.t -> unit

(** [log_write_commit ctx ~var v] appends the [Write] and the [Commit] of
    the current method execution as one atomic step. *)
val log_write_commit : ctx -> var:string -> Repr.t -> unit

(** [mutex ctx ~name] is a scheduler mutex whose transitions are logged as
    [Acquire]/[Release] at level [`Full] (consumed by the reduction
    baseline, not by refinement checking). *)
val mutex : ctx -> name:string -> Vyrd_sched.Sched.mutex
