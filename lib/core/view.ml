type lookup = string -> Repr.t option

type keyed = {
  keys_of_var : string -> Repr.t list;
  project : lookup -> Repr.t -> Repr.t option;
}

type t =
  | Full of (lookup -> Repr.t)
  | Keyed of keyed
  | Pair of t * t

let canonical_of_assoc kvs =
  Repr.List
    (List.sort Repr.compare (List.map (fun (k, v) -> Repr.Pair (k, v)) kvs))

type eval =
  | Efull of (lookup -> Repr.t)
  | Ekeyed of {
      spec : keyed;
      table : (Repr.t, Repr.t) Hashtbl.t;
      mutable projections : int;
    }
  | Epair of eval * eval

let rec make_eval = function
  | Full f -> Efull f
  | Keyed spec -> Ekeyed { spec; table = Hashtbl.create 64; projections = 0 }
  | Pair (a, b) -> Epair (make_eval a, make_eval b)

(* The replay's dirty set is drained once per commit and shared by every
   [Keyed] component of the evaluator tree. *)
let rec recompute_dirty eval replay dirty =
  match eval with
  | Efull f -> f (Replay.lookup replay)
  | Ekeyed e ->
    let keys =
      List.concat_map e.spec.keys_of_var dirty |> List.sort_uniq Repr.compare
    in
    List.iter
      (fun key ->
        e.projections <- e.projections + 1;
        match e.spec.project (Replay.lookup replay) key with
        | Some v -> Hashtbl.replace e.table key v
        | None -> Hashtbl.remove e.table key)
      keys;
    canonical_of_assoc (Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.table [])
  | Epair (a, b) ->
    let va = recompute_dirty a replay dirty in
    let vb = recompute_dirty b replay dirty in
    Repr.Pair (va, vb)

let rec needs_dirty = function
  | Efull _ -> false
  | Ekeyed _ -> true
  | Epair (a, b) -> needs_dirty a || needs_dirty b

let recompute eval replay =
  (* only [Keyed] components consume the dirty set; for an all-[Full] tree,
     skip the per-commit drain (fold + reset + list) — the set stays bounded
     by the number of distinct variable names either way *)
  let dirty = if needs_dirty eval then Replay.take_dirty replay else [] in
  recompute_dirty eval replay dirty

let rec projections = function
  | Efull _ -> 0
  | Ekeyed e -> e.projections
  | Epair (a, b) -> projections a + projections b

let rec reset = function
  | Efull _ -> ()
  | Ekeyed e -> Hashtbl.reset e.table
  | Epair (a, b) ->
    reset a;
    reset b
