exception Malformed of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let int = function Repr.Int n -> n | v -> malformed "expected int, got %s" (Repr.to_string v)
let bool = function Repr.Bool b -> b | v -> malformed "expected bool, got %s" (Repr.to_string v)
let str = function Repr.Str s -> s | v -> malformed "expected string, got %s" (Repr.to_string v)

let list = function
  | Repr.List vs -> vs
  | v -> malformed "expected list, got %s" (Repr.to_string v)

let pair = function
  | Repr.Pair (x, y) -> (x, y)
  | v -> malformed "expected pair, got %s" (Repr.to_string v)

let opt = function
  | Repr.List [] -> None
  | Repr.List [ v ] -> Some v
  | v -> malformed "expected option, got %s" (Repr.to_string v)

let of_opt = function None -> Repr.List [] | Some v -> Repr.List [ v ]

(* Checkpoint payloads are tagged with a format name so a single-checker
   snapshot is never mistaken for a farm snapshot (or vice versa) — restore
   raises [Malformed] on the wrong tag and resume falls back. *)
let tagged tag payload = Repr.Pair (Repr.Str tag, payload)

let untag tag v =
  match v with
  | Repr.Pair (Repr.Str t, payload) when String.equal t tag -> payload
  | Repr.Pair (Repr.Str t, _) -> malformed "checkpoint format %S, expected %S" t tag
  | v -> malformed "untagged checkpoint value %s" (Repr.to_string v)
