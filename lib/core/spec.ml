type kind = Mutator | Observer | Internal

let pp_kind ppf k =
  Fmt.string ppf
    (match k with Mutator -> "mutator" | Observer -> "observer" | Internal -> "internal")

module type S = sig
  type state

  val name : string
  val init : unit -> state
  val kind : string -> kind
  val apply : state -> mid:string -> args:Repr.t list -> ret:Repr.t -> (state, string) result
  val observe : state -> mid:string -> args:Repr.t list -> ret:Repr.t -> bool
  val view : state -> Repr.t
  val snapshot : state -> state
  val save : state -> Repr.t option
  val load : Repr.t -> state
end

type t = (module S)
