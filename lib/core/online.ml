type t = {
  ring : Event.t Ring.t;
  domain : Report.t Domain.t;
  mutable closed : bool;
}

let start ?(capacity = 32768) ?mode ?view log spec =
  (match mode with
  | Some `View -> Checker.require_view_level ~who:"Online.start" log
  | _ -> ());
  let ring = Ring.create ~capacity () in
  Log.subscribe log (fun ev -> Ring.push ring ev);
  let domain =
    Domain.spawn (fun () ->
        let checker = Checker.create ?mode ?view spec in
        (* drain in slices: one ring lock per batch instead of per event *)
        let scratch = Array.make 256 None in
        let rec loop () =
          let n = Ring.pop_batch ring scratch in
          if n = 0 then Checker.report checker
          else begin
            for k = 0 to n - 1 do
              (match scratch.(k) with
              | Some ev -> ignore (Checker.feed checker ev)
              | None -> ());
              scratch.(k) <- None
            done;
            loop ()
          end
        in
        loop ())
  in
  { ring; domain; closed = false }

let finish t =
  if not t.closed then begin
    t.closed <- true;
    Ring.close t.ring
  end;
  let r = Domain.join t.domain in
  {
    r with
    Report.stats =
      { r.Report.stats with Report.queue_high_water = Ring.high_water t.ring };
  }

let high_water t = Ring.high_water t.ring
