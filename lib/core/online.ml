type t = {
  queue : Event.t option Squeue.t;
  domain : Report.t Domain.t;
  mutable closed : bool;
}

let start ?mode ?view log spec =
  (match mode with
  | Some `View -> Checker.require_view_level ~who:"Online.start" log
  | _ -> ());
  let queue = Squeue.create () in
  Log.subscribe log (fun ev -> Squeue.push queue (Some ev));
  let domain =
    Domain.spawn (fun () ->
        let checker = Checker.create ?mode ?view spec in
        let rec loop () =
          match Squeue.pop queue with
          | Some ev ->
            ignore (Checker.feed checker ev);
            loop ()
          | None -> Checker.report checker
        in
        loop ())
  in
  { queue; domain; closed = false }

let finish t =
  if not t.closed then begin
    t.closed <- true;
    Squeue.push t.queue None
  end;
  Domain.join t.domain
