open Vyrd
module Bincodec = Vyrd_pipeline.Bincodec

exception Server_error of string

type t = {
  fd : Unix.file_descr;
  batch_events : int;
  buf : Event.t array;  (* partial batch, [count] filled *)
  mutable count : int;
  mutable credit : int;
  mutable sent : int;
  mutable bytes : int;
  mutable closed : bool;
  c_session : int;
  c_spilling : bool;
}

type outcome =
  | Checked of { report : Report.t; fail_index : int option }
  | Spilled of { path : string; events : int }

let transient = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT | Unix.ECONNRESET
  | Unix.EAGAIN | Unix.EINTR ->
    true
  | _ -> false

(* Exponential backoff would reach multi-minute sleeps at soak-level retry
   counts, and jitterless delays make every client of a recovering server
   reconnect in lockstep.  Cap the exponential curve and spread each delay
   by ±25% from a seeded Prng (deterministic given the seed, unlike
   [Random] — reconnect schedules stay reproducible in tests and soaks). *)
let dial ?(max_backoff = 2.0) ?jitter_seed ~retries ~backoff addr =
  if max_backoff <= 0. then invalid_arg "Client.dial: max_backoff";
  let sockaddr = Wire.sockaddr_of_addr addr in
  let domain =
    match addr with
    | Wire.Unix_socket _ -> Unix.PF_UNIX
    | Wire.Tcp _ -> Unix.PF_INET
  in
  let prng =
    lazy
      (Vyrd_sched.Prng.create
         (match jitter_seed with Some s -> s | None -> Unix.getpid ()))
  in
  let delay i =
    let base = Float.min max_backoff (backoff *. (2. ** float_of_int i)) in
    let spread = float_of_int (Vyrd_sched.Prng.int (Lazy.force prng) 1001) /. 1000. in
    base *. (0.75 +. (0.5 *. spread))
  in
  let rec attempt i =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) when transient e && i < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf (delay i);
      attempt (i + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  attempt 0

let connect ?(retries = 0) ?(backoff = 0.05) ?max_backoff ?jitter_seed
    ?(level = `View) ?(batch_events = 256) ?(producer = "vyrd-client") addr =
  if batch_events <= 0 then invalid_arg "Client.connect: batch_events";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = dial ?max_backoff ?jitter_seed ~retries ~backoff addr in
  match
    Wire.send_client fd
      (Wire.Hello { h_version = Wire.version; h_level = level; h_producer = producer });
    Wire.recv_server fd
  with
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e
  | Wire.Error msg ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (Server_error msg)
  | Wire.Hello_ack { a_version; a_session; a_credit; a_spilling } ->
    if a_version <> Wire.version then begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Server_error (Printf.sprintf "server speaks protocol %d, not %d"
                             a_version Wire.version))
    end;
    if a_credit <= 0 then begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Server_error "server granted no credit")
    end;
    (* outstanding credit can never exceed the server window, so a batch
       larger than [a_credit] would make [flush] wait forever *)
    let batch_events = min batch_events a_credit in
    {
      fd;
      batch_events;
      buf = Array.make batch_events (Event.Commit { tid = 0 });
      count = 0;
      credit = a_credit;
      sent = 0;
      bytes = 0;
      closed = false;
      c_session = a_session;
      c_spilling = a_spilling;
    }
  | _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (Server_error "protocol error: expected hello-ack")

let session t = t.c_session
let spilling t = t.c_spilling
let events_sent t = t.sent
let bytes_sent t = t.bytes

let fail t msg =
  t.closed <- true;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  raise (Server_error msg)

(* Drain one server message while waiting for credit or the verdict. *)
let recv t =
  match Wire.recv_server t.fd with
  | msg -> msg
  | exception Wire.Closed -> fail t "server closed the connection"
  | exception Bincodec.Corrupt msg -> fail t ("corrupt server frame: " ^ msg)

let rec await_credit t need =
  if t.credit < need then
    match recv t with
    | Wire.Credit n ->
      t.credit <- t.credit + n;
      await_credit t need
    | Wire.Heartbeat_ack -> await_credit t need
    | Wire.Error msg -> fail t msg
    | Wire.Hello_ack _ | Wire.Verdict _ | Wire.Resume_ack _
    | Wire.Checkpoint_state _ | Wire.Status _ ->
      fail t "protocol error: unexpected server message while streaming"

let write_msg t msg =
  let payload = Wire.encode_client msg in
  t.bytes <- t.bytes + String.length payload + 8;
  match Wire.write_frame t.fd payload with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) -> fail t (Unix.error_message e)

let flush t =
  if t.closed then raise (Server_error "session is closed");
  if t.count > 0 then begin
    let n = t.count in
    await_credit t n;
    let evs = Array.sub t.buf 0 n in
    t.count <- 0;
    write_msg t (Wire.Batch evs);
    t.credit <- t.credit - n;
    t.sent <- t.sent + n
  end

let send t ev =
  if t.closed then raise (Server_error "session is closed");
  t.buf.(t.count) <- ev;
  t.count <- t.count + 1;
  if t.count >= t.batch_events then flush t

(* Forward a whole pre-assembled batch — the coordinator's relay path.
   Chunked at [batch_events] (clamped to the server's window at connect), so
   credit can always cover a chunk. *)
let send_batch t evs =
  flush t;
  let n = Array.length evs in
  let pos = ref 0 in
  while !pos < n do
    let k = min t.batch_events (n - !pos) in
    await_credit t k;
    let chunk = if k = n && !pos = 0 then evs else Array.sub evs !pos k in
    write_msg t (Wire.Batch chunk);
    t.credit <- t.credit - k;
    t.sent <- t.sent + k;
    pos := !pos + k
  done

let heartbeat t =
  if t.closed then raise (Server_error "session is closed");
  write_msg t Wire.Heartbeat

let set_timeout t secs =
  Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO secs;
  Unix.setsockopt_float t.fd Unix.SO_SNDTIMEO secs

let resume_session t ~path =
  if t.closed then raise (Server_error "session is closed");
  if t.sent > 0 || t.count > 0 then
    invalid_arg "Client.resume_session: events already sent";
  write_msg t (Wire.Resume_session path);
  let rec await () =
    match recv t with
    | Wire.Resume_ack { ra_events; ra_resumed_at; ra_replayed } ->
      (ra_events, ra_resumed_at, ra_replayed)
    | Wire.Credit n ->
      t.credit <- t.credit + n;
      await ()
    | Wire.Heartbeat_ack -> await ()
    | Wire.Error msg -> fail t msg
    | _ -> fail t "protocol error: expected resume-ack"
  in
  await ()

let request_checkpoint t =
  if t.closed then raise (Server_error "session is closed");
  flush t;
  write_msg t Wire.Checkpoint_request;
  let rec await () =
    match recv t with
    | Wire.Checkpoint_state { cs_events; cs_state } -> (cs_events, cs_state)
    | Wire.Credit n ->
      t.credit <- t.credit + n;
      await ()
    | Wire.Heartbeat_ack -> await ()
    | Wire.Error msg -> fail t msg
    | _ -> fail t "protocol error: expected checkpoint-state"
  in
  await ()

let attach t log = Log.subscribe log (send t)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let finish t =
  flush t;
  write_msg t Wire.Finish;
  let rec await () =
    match recv t with
    | Wire.Verdict v ->
      close t;
      (match v.Wire.v_spilled with
      | Some path -> Spilled { path; events = v.Wire.v_events }
      | None ->
        Checked { report = v.Wire.v_report; fail_index = v.Wire.v_fail_index })
    | Wire.Credit _ | Wire.Heartbeat_ack -> await ()
    | Wire.Error msg -> fail t msg
    | Wire.Hello_ack _ | Wire.Resume_ack _ | Wire.Checkpoint_state _
    | Wire.Status _ ->
      fail t "protocol error: expected verdict"
  in
  await ()

let submit_log ?retries ?backoff ?max_backoff ?jitter_seed ?batch_events ?producer
    addr log =
  let t =
    connect ?retries ?backoff ?max_backoff ?jitter_seed ~level:(Log.level log)
      ?batch_events ?producer addr
  in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      Log.iter (send t) log;
      finish t)
