(** Client side of the vyrdd wire protocol.

    Connect to a {!Server} (retrying transient failures with exponential
    backoff), stream events — batched, under the server's credit-based flow
    control, so a slow remote checker blocks the sender instead of buffering
    without bound — and {!finish} to obtain the server's verdict.  A client
    can be {!attach}ed to a live {!Vyrd.Log} exactly like
    {!Vyrd_pipeline.Segment.attach}: every subsequently appended event is
    streamed out. *)

(** The server failed the session (its {!Wire.Error} message). *)
exception Server_error of string

type t

(** [connect addr] dials and performs the hello exchange.
    @param retries re-attempts after a transient connect failure
      (connection refused, socket file not there yet, timeouts) —
      default 0.
    @param backoff first retry delay in seconds, doubled per attempt
      (default 0.05).
    @param max_backoff cap on any single retry delay, in seconds (default
      2.0) — the exponential curve flattens here instead of growing into
      multi-minute sleeps at soak-level retry counts.
    @param jitter_seed each delay is spread by ±25% from a
      {!Vyrd_sched.Prng} seeded here (default: the process id), so the
      clients of a recovering server do not reconnect in lockstep; pass a
      seed for a reproducible schedule.
    @param level log level announced in the hello; the server builds its
      checker farm to match (default [`View]).
    @param batch_events events buffered per {!Wire.Batch} frame
      (default 256).
    @param producer free-form identification sent in the hello.
    @raise Unix.Unix_error when every attempt failed.
    @raise Server_error when the server refused the session. *)
val connect :
  ?retries:int ->
  ?backoff:float ->
  ?max_backoff:float ->
  ?jitter_seed:int ->
  ?level:Vyrd.Log.level ->
  ?batch_events:int ->
  ?producer:string ->
  Wire.addr ->
  t

(** Session id assigned by the server. *)
val session : t -> int

(** The server announced it is spilling this session to a segment spool
    (overload degradation) rather than checking it live. *)
val spilling : t -> bool

(** [send t ev] buffers one event, flushing a batch when full.  Blocks
    waiting for credit when the server is behind.
    @raise Server_error if the server failed the session. *)
val send : t -> Vyrd.Event.t -> unit

(** Flush the current partial batch. *)
val flush : t -> unit

(** [send_batch t evs] forwards a whole pre-assembled batch, flushing any
    buffered singles first so order is preserved — the coordinator's relay
    path.  Chunked to the negotiated batch size so credit always covers a
    chunk.
    @raise Server_error if the server failed the session. *)
val send_batch : t -> Vyrd.Event.t array -> unit

(** [heartbeat t] keeps an idle session alive across the server's idle
    timeout (the ack is consumed by the next credit/verdict wait). *)
val heartbeat : t -> unit

(** [set_timeout t secs] arms [SO_RCVTIMEO]/[SO_SNDTIMEO] on the session
    socket, so a hung (not just dead) server surfaces as {!Wire.Timeout}
    from the next blocking call instead of pinning the caller forever —
    the coordinator arms its worker legs with this. *)
val set_timeout : t -> float -> unit

(** [resume_session t ~path] asks the server to adopt the session spooled
    at [path] ({e on the server's filesystem}): replay it from its newest
    valid checkpoint and keep the session open for further {!send}s.  Must
    be called before any events are sent.  Returns
    [(events, resumed_at, replayed)] as in {!Wire.Resume_ack}.
    @raise Invalid_argument after events were already sent.
    @raise Server_error if the server refused or failed. *)
val resume_session : t -> path:string -> int * int option * int

(** [request_checkpoint t] flushes, then asks the server farm for a barrier
    snapshot covering exactly the events sent so far.  Returns the server's
    consumed count and the state ([None] when the farm cannot snapshot).
    @raise Server_error if the server failed the session. *)
val request_checkpoint : t -> int * Vyrd.Repr.t option

(** [attach t log] subscribes {!send} to every subsequently appended
    event. *)
val attach : t -> Vyrd.Log.t -> unit

val events_sent : t -> int

(** Bytes written to the socket, framing included. *)
val bytes_sent : t -> int

type outcome =
  | Checked of { report : Vyrd.Report.t; fail_index : int option }
      (** the server's merged farm verdict; [fail_index] is the 0-based
          stream index of the violating event *)
  | Spilled of { path : string; events : int }
      (** overload: the stream was spooled to segment file(s) at [path] on
          the {e server's} filesystem for later offline checking *)

(** [finish t] flushes, requests the drain, waits for the verdict and
    closes the socket.
    @raise Server_error if the server failed the session instead. *)
val finish : t -> outcome

(** Abandon the session without a verdict.  Idempotent; {!finish} closes
    implicitly. *)
val close : t -> unit

(** [submit_log addr log] is the one-shot convenience: connect at the log's
    level, stream every event, [finish]. *)
val submit_log :
  ?retries:int -> ?backoff:float -> ?max_backoff:float -> ?jitter_seed:int ->
  ?batch_events:int -> ?producer:string -> Wire.addr -> Vyrd.Log.t -> outcome
