open Vyrd
module Farm = Vyrd_pipeline.Farm
module Metrics = Vyrd_pipeline.Metrics
module Segment = Vyrd_pipeline.Segment
module Bincodec = Vyrd_pipeline.Bincodec
module Resume = Vyrd_pipeline.Resume

type config = {
  addr : Wire.addr;
  shards : Log.level -> Farm.shard list;
  capacity : int;
  window : int;
  max_sessions : int;
  spill_dir : string;
  idle_timeout : float;
  recheck_spills : bool;
  checkpoint_events : int;
  analyze : bool;
  monitors : unit -> Vyrd_analysis.Pass.t list;
  metrics : Metrics.t;
}

let config ?(capacity = 4096) ?(window = 8192) ?(max_sessions = 8) ?spill_dir
    ?(idle_timeout = 30.) ?(recheck_spills = false) ?(checkpoint_events = 50_000)
    ?(analyze = false) ?(monitors = fun () -> []) ?metrics ~addr shards =
  if checkpoint_events <= 0 then invalid_arg "Server.config: checkpoint_events";
  let spill_dir =
    match spill_dir with Some d -> d | None -> Filename.get_temp_dir_name ()
  in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { addr; shards; capacity; window; max_sessions; spill_dir; idle_timeout;
    recheck_spills; checkpoint_events; analyze; monitors; metrics }

type session = {
  s_id : int;
  s_fd : Unix.file_descr;
  mutable s_checking : bool;
  mutable s_control : bool;
      (* a coordinator's Register/Status connection: no farm, no slot, and
         not counted as a draining obstacle by [stop] *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Wire.addr;
  mutable accept_thread : Thread.t option;
  lock : Mutex.t;
  live : (int, session) Hashtbl.t;
  threads : (int, Thread.t) Hashtbl.t;
  mutable next_session : int;
  mutable accepted : int;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable draining : bool;
  mutable registered : string option;
  (* metrics handles, registered once *)
  m_sessions : Metrics.counter;
  m_failed : Metrics.counter;
  m_accept_errors : Metrics.counter;
  m_spilled : Metrics.counter;
  m_events : Metrics.counter;
  m_batches : Metrics.counter;
  m_bytes : Metrics.counter;
  m_credits : Metrics.counter;
  m_heartbeats : Metrics.counter;
  m_verdicts : Metrics.counter;
  m_peak : Metrics.gauge;
  m_batch_events : Metrics.histogram;
  m_rechecks : Metrics.counter;
  m_recheck_replayed : Metrics.counter;
  m_recheck_resumed : Metrics.counter;
  m_recheck_violations : Metrics.counter;
  m_spill_reclaimed : Metrics.counter;
  m_resumes : Metrics.counter;
  m_resume_replayed : Metrics.counter;
  m_monitor_events : Metrics.counter;
  m_monitor_violations : Metrics.counter;
}

(* Per-session temporal monitors ride the analysis lane; roll their
   summaries up into the [net.*] family so an operator sees violations
   without scraping per-session reports. *)
let count_monitor_summaries t (result : Farm.result) =
  List.iter
    (fun (s : Vyrd_analysis.Pass.summary) ->
      if s.Vyrd_analysis.Pass.pass = "monitor" then begin
        Metrics.add t.m_monitor_events s.Vyrd_analysis.Pass.events;
        Metrics.add t.m_monitor_violations s.Vyrd_analysis.Pass.errors
      end)
    result.Farm.analysis

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let addr t = t.bound
let metrics t = t.cfg.metrics
let sessions t = with_lock t (fun () -> t.accepted)

(* control connections are excluded: they live as long as their coordinator
   and must not look like sessions still draining *)
let active t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ s n -> if s.s_control then n else n + 1) t.live 0)

let drain t = with_lock t (fun () -> t.draining <- true)
let draining t = with_lock t (fun () -> t.draining)
let registered t = with_lock t (fun () -> t.registered)

let busy_slots t =
  Hashtbl.fold (fun _ s n -> if s.s_checking then n + 1 else n) t.live 0

let status t =
  let active, checking, draining =
    with_lock t (fun () ->
        ( Hashtbl.fold (fun _ s n -> if s.s_control then n else n + 1) t.live 0,
          busy_slots t,
          t.draining ))
  in
  {
    Wire.st_draining = draining;
    st_active = active;
    st_checking = checking;
    st_metrics = Metrics.encode t.cfg.metrics;
  }

(* A session in checking mode owns a farm; in spill mode, a segment writer.
   [checking] is decided at hello time from the live checking count. *)

let trivial_report events =
  {
    Report.outcome = Report.Pass;
    stats =
      {
        Report.events_processed = events;
        methods_checked = 0;
        commits_resolved = 0;
        per_method = [];
        queue_high_water = 0;
      };
  }

let min_fail_index (result : Farm.result) =
  List.fold_left
    (fun acc (sr : Farm.shard_result) ->
      match (acc, sr.Farm.sr_fail_index) with
      | None, i -> i
      | Some a, Some b -> Some (min a b)
      | Some _, None -> acc)
    None result.Farm.shards

(* Offline re-check of one spilled spool through the session farm template,
   resuming from its latest usable checkpoint and leaving fresh checkpoint
   frames behind so the *next* pass over the same spool is O(suffix). *)
let recheck t ~path =
  let outcome =
    Resume.resume_farm ~capacity:t.cfg.capacity ~metrics:t.cfg.metrics
      ~annotate_every:t.cfg.checkpoint_events ~shards:t.cfg.shards ~path ()
  in
  Metrics.incr t.m_rechecks;
  Metrics.add t.m_recheck_replayed outcome.Resume.replayed;
  (match outcome.Resume.resumed_at with
  | Some _ -> Metrics.incr t.m_recheck_resumed
  | None -> ());
  (match outcome.Resume.report.Report.outcome with
  | Report.Fail _ -> Metrics.incr t.m_recheck_violations
  | Report.Pass -> ());
  outcome

(* A coordinator's control connection: Register/Status_request instead of a
   hello.  No farm, no checking slot; answers health polls and the drain
   order until the peer goes away. *)
let control_loop t (s : session) =
  let fd = s.s_fd in
  s.s_control <- true;
  (* polled at the coordinator's pace, not ours: disarm the data-session
     idle timeout *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.;
  let finished = ref false in
  while not !finished do
    match Wire.recv_client fd with
    | Wire.Status_request -> Wire.send_server fd (Wire.Status (status t))
    | Wire.Drain ->
      with_lock t (fun () -> t.draining <- true);
      Wire.send_server fd (Wire.Status (status t))
    | Wire.Heartbeat -> Wire.send_server fd Wire.Heartbeat_ack
    | Wire.Finish -> finished := true
    | _ -> raise (Bincodec.Corrupt "unexpected message on a control connection")
    | exception Wire.Closed -> finished := true
  done

(* Everything a data connection does, from hello to verdict.  Raises on
   any protocol failure; the caller contains it.  Returns the spool path
   when the session was spilled and reached its verdict, so the caller can
   re-check it offline. *)
let serve_data_session t (s : session) hello =
  let fd = s.s_fd in
  if with_lock t (fun () -> t.draining) then
    raise (Bincodec.Corrupt "server is draining");
  if hello.Wire.h_version <> Wire.version then
    raise
      (Bincodec.Corrupt
         (Printf.sprintf "protocol version %d, expected %d" hello.Wire.h_version
            Wire.version));
  let level = hello.Wire.h_level in
  let checking =
    with_lock t (fun () ->
        let busy =
          Hashtbl.fold (fun _ s n -> if s.s_checking then n + 1 else n) t.live 0
        in
        let ok = busy < t.cfg.max_sessions in
        s.s_checking <- ok;
        ok)
  in
  (* The sink this session feeds: a farm, or a segment spool under overload.
     Both are torn down through [cleanup] on any exit path. *)
  let farm = ref None in
  let writer = ref None in
  let spill_path = ref None in
  if checking then
    (* Invalid_argument (e.g. a `View shard template refusing an `Io-level
       hello) must fail this session, not kill the server *)
    (* each session gets fresh pass instances: pass state is per-stream *)
    let passes =
      (if t.cfg.analyze then Vyrd_analysis.Pass.for_level level else [])
      @ t.cfg.monitors ()
    in
    match Farm.start ~capacity:t.cfg.capacity ~metrics:t.cfg.metrics ~passes
            ~level (t.cfg.shards level) with
    | f -> farm := Some f
    | exception Invalid_argument msg -> raise (Bincodec.Corrupt msg)
  else begin
    let path =
      Filename.concat t.cfg.spill_dir (Printf.sprintf "vyrdd-spill-%06d.seg" s.s_id)
    in
    writer := Some (Segment.create_writer ~level path);
    spill_path := Some path;
    Metrics.incr t.m_spilled
  end;
  let cleanup () =
    (match !farm with
    | Some f -> count_monitor_summaries t (Farm.finish f)
    | None -> ());
    match !writer with Some w -> Segment.close w | None -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Wire.send_server fd
    (Wire.Hello_ack
       {
         a_version = Wire.version;
         a_session = s.s_id;
         a_credit = t.cfg.window;
         a_spilling = not checking;
       });
  let consumed = ref 0 in
  let ungranted = ref 0 in
  let grant_at = max 1 (t.cfg.window / 2) in
  let finished = ref false in
  while not !finished do
    let payload = Wire.read_frame fd in
    Metrics.add t.m_bytes (String.length payload + 8);
    match Wire.decode_client payload with
    | Wire.Hello _ -> raise (Bincodec.Corrupt "unexpected second hello")
    | Wire.Heartbeat ->
      Metrics.incr t.m_heartbeats;
      Wire.send_server fd Wire.Heartbeat_ack
    | Wire.Batch evs ->
      let n = Array.length evs in
      (match !farm with
      | Some f -> Farm.feed_batch f evs
      | None ->
        let w = Option.get !writer in
        Array.iter (Segment.append w) evs);
      consumed := !consumed + n;
      ungranted := !ungranted + n;
      Metrics.add t.m_events n;
      Metrics.incr t.m_batches;
      Metrics.observe t.m_batch_events n;
      if !ungranted >= grant_at then begin
        Wire.send_server fd (Wire.Credit !ungranted);
        Metrics.add t.m_credits !ungranted;
        ungranted := 0
      end
    | Wire.Finish ->
      let verdict =
        match !farm with
        | Some f ->
          let result = Farm.finish f in
          farm := None;
          count_monitor_summaries t result;
          {
            Wire.v_report = result.Farm.merged;
            v_fail_index = min_fail_index result;
            v_events = !consumed;
            v_spilled = None;
          }
        | None ->
          let w = Option.get !writer in
          Segment.close w;
          writer := None;
          {
            Wire.v_report = trivial_report !consumed;
            v_fail_index = None;
            v_events = !consumed;
            v_spilled = !spill_path;
          }
      in
      Wire.send_server fd (Wire.Verdict verdict);
      Metrics.incr t.m_verdicts;
      finished := true
    | Wire.Resume_session path ->
      (* cluster failover: adopt the half-streamed session spooled by the
         coordinator.  Only valid as the session's first traffic — the
         fresh farm from the hello is replaced by one restored from the
         spool's newest usable checkpoint, and the router's global cursor
         carries over, so the eventual verdict (fail index included) is the
         one an uninterrupted session would have produced. *)
      if not checking then
        raise (Bincodec.Corrupt "resume on a spilling session");
      if !consumed > 0 then
        raise (Bincodec.Corrupt "resume after events were received");
      (match !farm with
      | Some f ->
        ignore (Farm.finish f : Farm.result);
        farm := None
      | None -> ());
      let passes =
        (if t.cfg.analyze then Vyrd_analysis.Pass.for_level level else [])
        @ t.cfg.monitors ()
      in
      (match
         Resume.resume_farm_open ~capacity:t.cfg.capacity
           ~metrics:t.cfg.metrics ~passes ~shards:t.cfg.shards ~path ()
       with
      | rf ->
        farm := Some rf.Resume.rf_farm;
        consumed := rf.Resume.rf_total;
        Metrics.incr t.m_resumes;
        Metrics.add t.m_resume_replayed rf.Resume.rf_replayed;
        Wire.send_server fd
          (Wire.Resume_ack
             {
               ra_events = rf.Resume.rf_total;
               ra_resumed_at = rf.Resume.rf_resumed_at;
               ra_replayed = rf.Resume.rf_replayed;
             })
      | exception Sys_error msg -> raise (Bincodec.Corrupt ("resume: " ^ msg))
      | exception Invalid_argument msg ->
        raise (Bincodec.Corrupt ("resume: " ^ msg)))
    | Wire.Checkpoint_request ->
      (* in-band barrier: by protocol order every batch before this request
         has been fed, so the snapshot covers exactly [consumed] events *)
      let state = match !farm with Some f -> Farm.checkpoint f | None -> None in
      Wire.send_server fd
        (Wire.Checkpoint_state { cs_events = !consumed; cs_state = state })
    | Wire.Status_request -> Wire.send_server fd (Wire.Status (status t))
    | Wire.Drain | Wire.Register _ ->
      raise (Bincodec.Corrupt "control message on a data session")
  done;
  if checking then None else !spill_path

(* First message decides what this connection is: a hello opens a data
   session, Register/Status_request a control one. *)
let serve_session t (s : session) =
  let fd = s.s_fd in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
  (* a peer that stops *reading* must not pin this thread in a blocking
     write (Credit/Verdict) past the idle timeout either *)
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.idle_timeout;
  match Wire.recv_client fd with
  | Wire.Hello hello -> serve_data_session t s hello
  | Wire.Register name ->
    with_lock t (fun () -> t.registered <- Some name);
    Wire.send_server fd (Wire.Status (status t));
    control_loop t s;
    None
  | Wire.Status_request ->
    (* one-shot probe: answer, then keep serving polls *)
    Wire.send_server fd (Wire.Status (status t));
    control_loop t s;
    None
  | _ -> raise (Bincodec.Corrupt "expected hello")

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let session_thread t s =
  let failed msg =
    Metrics.incr t.m_failed;
    (* best effort: the peer may already be gone *)
    try Wire.send_server s.s_fd (Wire.Error msg)
    with Unix.Unix_error _ | Wire.Closed | Wire.Timeout -> ()
  in
  (* the fd close and live/threads removal below must run on *every* exit,
     else the session pins a checking slot forever — hence the catch-all *)
  let spilled =
    try serve_session t s with
    | Bincodec.Corrupt msg -> failed msg; None
    | Wire.Closed -> failed "connection closed mid-session"; None
    | Wire.Timeout -> failed "session idle timeout"; None
    | Unix.Unix_error (e, _, _) -> failed (Unix.error_message e); None
    | Sys_error msg -> failed msg; None
    | e -> failed ("unexpected exception: " ^ Printexc.to_string e); None
  in
  close_quietly s.s_fd;
  (* Opportunistic spill re-check: the client already has its Spilled
     verdict, so this costs it nothing — but it must obey the same slot
     accounting as live checking.  The session stays in [t.live] with
     [s_checking] set while the farm runs, so concurrent hellos still count
     it against [max_sessions]. *)
  (match spilled with
  | Some path when t.cfg.recheck_spills ->
    let slot =
      with_lock t (fun () ->
          let busy =
            Hashtbl.fold (fun _ s n -> if s.s_checking then n + 1 else n) t.live 0
          in
          if (not t.stopping) && busy < t.cfg.max_sessions then begin
            s.s_checking <- true;
            true
          end
          else false)
    in
    if slot then begin
      (* best effort: the spool stays on disk for [vyrd-check check --resume]
         whatever happens here *)
      try
        let outcome = recheck t ~path in
        match outcome.Resume.report.Report.outcome with
        | Report.Pass when not outcome.Resume.truncated ->
          (* verified clean end to end: reclaim the disk.  Violating or
             truncated spools stay for forensics and offline reruns. *)
          (try Sys.remove path with Sys_error _ -> ());
          Metrics.incr t.m_spill_reclaimed
        | _ -> ()
      with Bincodec.Corrupt _ | Invalid_argument _ | Sys_error _
         | Unix.Unix_error _ -> ()
    end
  | _ -> ());
  with_lock t (fun () ->
      Hashtbl.remove t.live s.s_id;
      Hashtbl.remove t.threads s.s_id)

let accept_loop t =
  let stop = ref false in
  while not !stop do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
      if with_lock t (fun () -> t.stopping) then begin
        close_quietly fd
      end
      else begin
        let s =
          with_lock t (fun () ->
              let id = t.next_session in
              t.next_session <- id + 1;
              t.accepted <- t.accepted + 1;
              let s = { s_id = id; s_fd = fd; s_checking = false; s_control = false } in
              Hashtbl.replace t.live id s;
              s)
        in
        Metrics.incr t.m_sessions;
        let th = Thread.create (fun () -> session_thread t s) () in
        with_lock t (fun () ->
            Metrics.record t.m_peak (Hashtbl.length t.live);
            if Hashtbl.mem t.live s.s_id then Hashtbl.replace t.threads s.s_id th)
      end
    | exception Unix.Unix_error ((Unix.EINVAL | Unix.EBADF | Unix.ESHUTDOWN), _, _)
      ->
      stop := true
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
      if with_lock t (fun () -> t.stopping) then stop := true
    | exception Unix.Unix_error (_, _, _) ->
      (* EMFILE/ENFILE and friends are transient: dying here would leave a
         daemon that looks alive but never accepts again.  Back off briefly
         so fd pressure can clear, then retry. *)
      if with_lock t (fun () -> t.stopping) then stop := true
      else begin
        Metrics.incr t.m_accept_errors;
        Thread.delay 0.1
      end
  done

let start cfg =
  (* a dead peer surfaces as EPIPE from write, not a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain =
    match cfg.addr with
    | Wire.Unix_socket _ -> Unix.PF_UNIX
    | Wire.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match
    (match cfg.addr with
     | Wire.Unix_socket path ->
       if Sys.file_exists path then Unix.unlink path
     | Wire.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true);
    Unix.bind listen_fd (Wire.sockaddr_of_addr cfg.addr);
    Unix.listen listen_fd 64;
    (match Unix.getsockname listen_fd with
    | Unix.ADDR_UNIX path -> Wire.Unix_socket path
    | Unix.ADDR_INET (ip, port) -> Wire.Tcp (Unix.string_of_inet_addr ip, port))
  with
  | exception e ->
    close_quietly listen_fd;
    raise e
  | bound ->
    let m = cfg.metrics in
    let t =
      {
        cfg;
        listen_fd;
        bound;
        accept_thread = None;
        lock = Mutex.create ();
        live = Hashtbl.create 16;
        threads = Hashtbl.create 16;
        next_session = 0;
        accepted = 0;
        stopping = false;
        stopped = false;
        draining = false;
        registered = None;
        m_sessions = Metrics.counter m "net.sessions";
        m_failed = Metrics.counter m "net.sessions_failed";
        m_accept_errors = Metrics.counter m "net.accept_errors";
        m_spilled = Metrics.counter m "net.sessions_spilled";
        m_events = Metrics.counter m "net.events";
        m_batches = Metrics.counter m "net.batches";
        m_bytes = Metrics.counter m "net.bytes_in";
        m_credits = Metrics.counter m "net.credits_granted";
        m_heartbeats = Metrics.counter m "net.heartbeats";
        m_verdicts = Metrics.counter m "net.verdicts";
        m_peak = Metrics.gauge m "net.sessions_peak";
        m_batch_events = Metrics.histogram m "net.batch_events";
        m_rechecks = Metrics.counter m "net.spill_rechecks";
        m_recheck_replayed = Metrics.counter m "net.spill_recheck_replayed";
        m_recheck_resumed = Metrics.counter m "net.spill_recheck_resumed";
        m_recheck_violations = Metrics.counter m "net.spill_recheck_violations";
        m_spill_reclaimed = Metrics.counter m "net.spill_reclaimed";
        m_resumes = Metrics.counter m "net.session_resumes";
        m_resume_replayed = Metrics.counter m "net.session_resume_replayed";
        m_monitor_events = Metrics.counter m "net.monitor_events";
        m_monitor_violations = Metrics.counter m "net.monitor_violations";
      }
    in
    t.accept_thread <- Some (Thread.create accept_loop t);
    t

let stop ?(deadline = 10.) t =
  let already = with_lock t (fun () ->
      let s = t.stopped in
      t.stopping <- true;
      t.stopped <- true;
      s)
  in
  if not already then begin
    (* wake the accept loop: shutdown flips accept() into EINVAL on Linux *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    close_quietly t.listen_fd;
    (* drain: let open sessions run to their verdict until the deadline *)
    let until = Unix.gettimeofday () +. deadline in
    while active t > 0 && Unix.gettimeofday () < until do
      Thread.delay 0.02
    done;
    (* force-close stragglers; their threads fail the session cleanly *)
    let stragglers =
      with_lock t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.live [])
    in
    List.iter
      (fun s ->
        try Unix.shutdown s.s_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      stragglers;
    let threads =
      with_lock t (fun () -> Hashtbl.fold (fun _ th acc -> th :: acc) t.threads [])
    in
    List.iter Thread.join threads;
    match t.bound with
    | Wire.Unix_socket path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Tcp _ -> ()
  end
