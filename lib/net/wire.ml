open Vyrd
module Bincodec = Vyrd_pipeline.Bincodec

let version = 1
let max_frame_bytes = 1 lsl 24

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bincodec.Corrupt m)) fmt

(* ------------------------------------------------------------- levels *)

let level_code = function `None -> 0 | `Io -> 1 | `View -> 2 | `Full -> 3

let level_of_code = function
  | 0 -> `None
  | 1 -> `Io
  | 2 -> `View
  | 3 -> `Full
  | c -> corrupt "unknown log level code %d" c

(* ------------------------------------------------------------ messages *)

type hello = { h_version : int; h_level : Log.level; h_producer : string }

type client_msg =
  | Hello of hello
  | Batch of Event.t array
  | Heartbeat
  | Finish
  | Resume_session of string
  | Checkpoint_request
  | Drain
  | Status_request
  | Register of string

type verdict = {
  v_report : Report.t;
  v_fail_index : int option;
  v_events : int;
  v_spilled : string option;
}

type status = {
  st_draining : bool;
  st_active : int;
  st_checking : int;
  st_metrics : string;
}

type server_msg =
  | Hello_ack of { a_version : int; a_session : int; a_credit : int; a_spilling : bool }
  | Credit of int
  | Heartbeat_ack
  | Verdict of verdict
  | Error of string
  | Resume_ack of { ra_events : int; ra_resumed_at : int option; ra_replayed : int }
  | Checkpoint_state of { cs_events : int; cs_state : Vyrd.Repr.t option }
  | Status of status

(* ------------------------------------------------------ report codec *)

let put_option put b = function
  | None -> Buffer.add_char b '\000'
  | Some v ->
    Buffer.add_char b '\001';
    put b v

let get_option get s pos =
  if pos >= String.length s then corrupt "truncated option";
  match s.[pos] with
  | '\000' -> (None, pos + 1)
  | '\001' ->
    let v, pos = get s (pos + 1) in
    (Some v, pos)
  | c -> corrupt "unknown option tag 0x%02x" (Char.code c)

let put_exec b (e : Report.exec) =
  Bincodec.put_uvarint b e.Report.e_tid;
  Bincodec.put_string b e.Report.e_mid;
  Bincodec.put_uvarint b (List.length e.Report.e_args);
  List.iter (Bincodec.put_repr b) e.Report.e_args;
  put_option Bincodec.put_repr b e.Report.e_ret

let get_exec s pos =
  let e_tid, pos = Bincodec.get_uvarint s pos in
  let e_mid, pos = Bincodec.get_string s pos in
  let n, pos = Bincodec.get_uvarint s pos in
  let rec items acc n pos =
    if n = 0 then (List.rev acc, pos)
    else
      let v, pos = Bincodec.get_repr s pos in
      items (v :: acc) (n - 1) pos
  in
  let e_args, pos = items [] n pos in
  let e_ret, pos = get_option Bincodec.get_repr s pos in
  ({ Report.e_tid; e_mid; e_args; e_ret }, pos)

let put_violation b (v : Report.violation) =
  match v with
  | Report.Io_violation { exec; commit_ordinal; reason } ->
    Buffer.add_char b '\000';
    put_exec b exec;
    Bincodec.put_uvarint b commit_ordinal;
    Bincodec.put_string b reason
  | Report.Observer_violation { exec; window = lo, hi } ->
    Buffer.add_char b '\001';
    put_exec b exec;
    Bincodec.put_varint b lo;
    Bincodec.put_varint b hi
  | Report.View_violation { exec; commit_ordinal; view_i; view_s } ->
    Buffer.add_char b '\002';
    put_exec b exec;
    Bincodec.put_uvarint b commit_ordinal;
    Bincodec.put_repr b view_i;
    Bincodec.put_repr b view_s
  | Report.Invariant_violation { exec; commit_ordinal; invariant } ->
    Buffer.add_char b '\003';
    put_exec b exec;
    Bincodec.put_uvarint b commit_ordinal;
    Bincodec.put_string b invariant
  | Report.Ill_formed { event; reason } ->
    Buffer.add_char b '\004';
    put_option Bincodec.put_event b event;
    Bincodec.put_string b reason

let get_violation s pos =
  if pos >= String.length s then corrupt "truncated violation";
  match s.[pos] with
  | '\000' ->
    let exec, pos = get_exec s (pos + 1) in
    let commit_ordinal, pos = Bincodec.get_uvarint s pos in
    let reason, pos = Bincodec.get_string s pos in
    (Report.Io_violation { exec; commit_ordinal; reason }, pos)
  | '\001' ->
    let exec, pos = get_exec s (pos + 1) in
    let lo, pos = Bincodec.get_varint s pos in
    let hi, pos = Bincodec.get_varint s pos in
    (Report.Observer_violation { exec; window = (lo, hi) }, pos)
  | '\002' ->
    let exec, pos = get_exec s (pos + 1) in
    let commit_ordinal, pos = Bincodec.get_uvarint s pos in
    let view_i, pos = Bincodec.get_repr s pos in
    let view_s, pos = Bincodec.get_repr s pos in
    (Report.View_violation { exec; commit_ordinal; view_i; view_s }, pos)
  | '\003' ->
    let exec, pos = get_exec s (pos + 1) in
    let commit_ordinal, pos = Bincodec.get_uvarint s pos in
    let invariant, pos = Bincodec.get_string s pos in
    (Report.Invariant_violation { exec; commit_ordinal; invariant }, pos)
  | '\004' ->
    let event, pos = get_option Bincodec.get_event s (pos + 1) in
    let reason, pos = Bincodec.get_string s pos in
    (Report.Ill_formed { event; reason }, pos)
  | c -> corrupt "unknown violation tag 0x%02x" (Char.code c)

let put_report b (r : Report.t) =
  (match r.Report.outcome with
  | Report.Pass -> Buffer.add_char b '\000'
  | Report.Fail v ->
    Buffer.add_char b '\001';
    put_violation b v);
  let s = r.Report.stats in
  Bincodec.put_uvarint b s.Report.events_processed;
  Bincodec.put_uvarint b s.Report.methods_checked;
  Bincodec.put_uvarint b s.Report.commits_resolved;
  Bincodec.put_uvarint b (List.length s.Report.per_method);
  List.iter
    (fun (mid, n) ->
      Bincodec.put_string b mid;
      Bincodec.put_uvarint b n)
    s.Report.per_method;
  Bincodec.put_uvarint b s.Report.queue_high_water

let get_report s pos =
  if pos >= String.length s then corrupt "truncated report";
  let outcome_tag = s.[pos] in
  let outcome, pos =
    match outcome_tag with
    | '\000' -> (Report.Pass, pos + 1)
    | '\001' ->
      let v, pos = get_violation s (pos + 1) in
      (Report.Fail v, pos)
    | c -> corrupt "unknown outcome tag 0x%02x" (Char.code c)
  in
  let events_processed, pos = Bincodec.get_uvarint s pos in
  let methods_checked, pos = Bincodec.get_uvarint s pos in
  let commits_resolved, pos = Bincodec.get_uvarint s pos in
  let n, pos = Bincodec.get_uvarint s pos in
  let rec items acc n pos =
    if n = 0 then (List.rev acc, pos)
    else
      let mid, pos = Bincodec.get_string s pos in
      let count, pos = Bincodec.get_uvarint s pos in
      items ((mid, count) :: acc) (n - 1) pos
  in
  let per_method, pos = items [] n pos in
  let queue_high_water, pos = Bincodec.get_uvarint s pos in
  ( {
      Report.outcome;
      stats =
        {
          Report.events_processed;
          methods_checked;
          commits_resolved;
          per_method;
          queue_high_water;
        };
    },
    pos )

(* ------------------------------------------------------ message codec *)

let put_uvarint_option b = put_option (fun b n -> Bincodec.put_uvarint b n) b
let get_uvarint_option = get_option (fun s pos -> Bincodec.get_uvarint s pos)

let encode_client msg =
  let b = Buffer.create 64 in
  (match msg with
  | Hello h ->
    Buffer.add_char b '\000';
    Bincodec.put_uvarint b h.h_version;
    Buffer.add_char b (Char.chr (level_code h.h_level));
    Bincodec.put_string b h.h_producer
  | Batch evs ->
    Buffer.add_char b '\001';
    Bincodec.put_uvarint b (Array.length evs);
    Array.iter (Bincodec.put_event b) evs
  | Heartbeat -> Buffer.add_char b '\002'
  | Finish -> Buffer.add_char b '\003'
  | Resume_session path ->
    Buffer.add_char b '\004';
    Bincodec.put_string b path
  | Checkpoint_request -> Buffer.add_char b '\005'
  | Drain -> Buffer.add_char b '\006'
  | Status_request -> Buffer.add_char b '\007'
  | Register name ->
    Buffer.add_char b '\008';
    Bincodec.put_string b name);
  Buffer.contents b

(* A payload whose message ends before the payload does is as corrupt as a
   truncated one: trailing garbage means framing desynchronization. *)
let finish_decode what (v, pos) s =
  if pos <> String.length s then
    corrupt "%s message payload has %d trailing bytes" what (String.length s - pos);
  v

let decode_client s =
  if s = "" then corrupt "empty message";
  finish_decode "client"
    (match s.[0] with
    | '\000' ->
      let h_version, pos = Bincodec.get_uvarint s 1 in
      if pos >= String.length s then corrupt "truncated hello";
      let h_level = level_of_code (Char.code s.[pos]) in
      let h_producer, pos = Bincodec.get_string s (pos + 1) in
      (Hello { h_version; h_level; h_producer }, pos)
    | '\001' ->
      let n, pos = Bincodec.get_uvarint s 1 in
      if n > max_frame_bytes then corrupt "batch of %d events" n;
      let evs, pos = Bincodec.get_events s ~pos ~count:n in
      (Batch evs, pos)
    | '\002' -> (Heartbeat, 1)
    | '\003' -> (Finish, 1)
    | '\004' ->
      let path, pos = Bincodec.get_string s 1 in
      (Resume_session path, pos)
    | '\005' -> (Checkpoint_request, 1)
    | '\006' -> (Drain, 1)
    | '\007' -> (Status_request, 1)
    | '\008' ->
      let name, pos = Bincodec.get_string s 1 in
      (Register name, pos)
    | c -> corrupt "unknown client message tag 0x%02x" (Char.code c))
    s

let encode_server msg =
  let b = Buffer.create 64 in
  (match msg with
  | Hello_ack { a_version; a_session; a_credit; a_spilling } ->
    Buffer.add_char b '\000';
    Bincodec.put_uvarint b a_version;
    Bincodec.put_uvarint b a_session;
    Bincodec.put_uvarint b a_credit;
    Buffer.add_char b (if a_spilling then '\001' else '\000')
  | Credit n ->
    Buffer.add_char b '\001';
    Bincodec.put_uvarint b n
  | Heartbeat_ack -> Buffer.add_char b '\002'
  | Verdict v ->
    Buffer.add_char b '\003';
    put_report b v.v_report;
    put_uvarint_option b v.v_fail_index;
    Bincodec.put_uvarint b v.v_events;
    put_option Bincodec.put_string b v.v_spilled
  | Error msg ->
    Buffer.add_char b '\004';
    Bincodec.put_string b msg
  | Resume_ack { ra_events; ra_resumed_at; ra_replayed } ->
    Buffer.add_char b '\005';
    Bincodec.put_uvarint b ra_events;
    put_uvarint_option b ra_resumed_at;
    Bincodec.put_uvarint b ra_replayed
  | Checkpoint_state { cs_events; cs_state } ->
    Buffer.add_char b '\006';
    Bincodec.put_uvarint b cs_events;
    put_option Bincodec.put_repr b cs_state
  | Status { st_draining; st_active; st_checking; st_metrics } ->
    Buffer.add_char b '\007';
    Buffer.add_char b (if st_draining then '\001' else '\000');
    Bincodec.put_uvarint b st_active;
    Bincodec.put_uvarint b st_checking;
    Bincodec.put_string b st_metrics);
  Buffer.contents b

let decode_server s =
  if s = "" then corrupt "empty message";
  finish_decode "server"
    (match s.[0] with
    | '\000' ->
      let a_version, pos = Bincodec.get_uvarint s 1 in
      let a_session, pos = Bincodec.get_uvarint s pos in
      let a_credit, pos = Bincodec.get_uvarint s pos in
      if pos >= String.length s then corrupt "truncated hello-ack";
      let a_spilling = s.[pos] <> '\000' in
      (Hello_ack { a_version; a_session; a_credit; a_spilling }, pos + 1)
    | '\001' ->
      let n, pos = Bincodec.get_uvarint s 1 in
      (Credit n, pos)
    | '\002' -> (Heartbeat_ack, 1)
    | '\003' ->
      let v_report, pos = get_report s 1 in
      let v_fail_index, pos = get_uvarint_option s pos in
      let v_events, pos = Bincodec.get_uvarint s pos in
      let v_spilled, pos = get_option Bincodec.get_string s pos in
      (Verdict { v_report; v_fail_index; v_events; v_spilled }, pos)
    | '\004' ->
      let msg, pos = Bincodec.get_string s 1 in
      (Error msg, pos)
    | '\005' ->
      let ra_events, pos = Bincodec.get_uvarint s 1 in
      let ra_resumed_at, pos = get_uvarint_option s pos in
      let ra_replayed, pos = Bincodec.get_uvarint s pos in
      (Resume_ack { ra_events; ra_resumed_at; ra_replayed }, pos)
    | '\006' ->
      let cs_events, pos = Bincodec.get_uvarint s 1 in
      let cs_state, pos = get_option Bincodec.get_repr s pos in
      (Checkpoint_state { cs_events; cs_state }, pos)
    | '\007' ->
      if String.length s < 2 then corrupt "truncated status";
      let st_draining = s.[1] <> '\000' in
      let st_active, pos = Bincodec.get_uvarint s 2 in
      let st_checking, pos = Bincodec.get_uvarint s pos in
      let st_metrics, pos = Bincodec.get_string s pos in
      (Status { st_draining; st_active; st_checking; st_metrics }, pos)
    | c -> corrupt "unknown server message tag 0x%02x" (Char.code c))
    s

(* -------------------------------------------------------------- frames *)

exception Closed
exception Timeout

let frame_header_bytes = 8

let frame payload =
  let head = Bytes.create frame_header_bytes in
  Bytes.set_int32_le head 0 (Int32.of_int (String.length payload land 0xffffffff));
  Bytes.set_int32_le head 4 (Int32.of_int (Bincodec.crc32 payload land 0xffffffff));
  Bytes.unsafe_to_string head ^ payload

(* [write] can send short on sockets; loop, restarting on EINTR. *)
let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | 0 -> raise Closed
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    (* only reachable when SO_SNDTIMEO is set (server side): a peer that
       stopped reading.  Fail the session like an idle read would. *)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise Timeout
  done

let write_frame fd payload = write_all fd (frame payload)

(* Read exactly [n] bytes.  [`Eof] only when zero bytes had been read —
   EOF mid-read is a torn frame, reported as [Corrupt] by the caller. *)
let read_exactly fd n =
  let buf = Bytes.create n in
  let pos = ref 0 in
  (try
     while !pos < n do
       match Unix.read fd buf !pos (n - !pos) with
       | 0 -> raise Exit
       | k -> pos := !pos + k
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         raise Timeout
     done
   with Exit -> ());
  if !pos = n then `Ok (Bytes.unsafe_to_string buf)
  else if !pos = 0 then `Eof
  else `Torn !pos

let get_u32 s off = Int32.to_int (String.get_int32_le s off) land 0xffffffff

let read_frame ?(max_bytes = max_frame_bytes) fd =
  match read_exactly fd frame_header_bytes with
  | `Eof -> raise Closed
  | `Torn n -> corrupt "torn frame header (%d of %d bytes)" n frame_header_bytes
  | `Ok head -> (
    let len = get_u32 head 0 in
    let crc = get_u32 head 4 in
    if len > max_bytes then corrupt "frame of %d bytes exceeds the %d limit" len max_bytes;
    match read_exactly fd len with
    | `Eof | `Torn _ -> corrupt "torn frame payload (wanted %d bytes)" len
    | `Ok payload ->
      if Bincodec.crc32 payload <> crc then corrupt "frame checksum mismatch";
      payload)

let send_client fd msg = write_frame fd (encode_client msg)
let send_server fd msg = write_frame fd (encode_server msg)
let recv_client ?max_bytes fd = decode_client (read_frame ?max_bytes fd)
let recv_server ?max_bytes fd = decode_server (read_frame ?max_bytes fd)

(* ----------------------------------------------------------- addresses *)

type addr = Unix_socket of string | Tcp of string * int

let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i -> (
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port -> Tcp (String.sub s 0 i, port)
    | None -> Unix_socket s)
  | None -> Unix_socket s

let pp_addr ppf = function
  | Unix_socket path -> Fmt.pf ppf "unix:%s" path
  | Tcp (host, port) -> Fmt.pf ppf "%s:%d" host port

let sockaddr_of_addr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.ADDR_INET (ip, port)
