(** The vyrdd wire protocol.

    VYRD's architecture decouples cheap in-process logging from checking
    that may run "offline, possibly on a different machine" (§4.2, §6.1);
    this module is the socket format of that decoupling, the network
    counterpart of the {!Vyrd_pipeline.Segment} disk format.  A session is
    a sequence of {e frames} in each direction over one stream socket:

    {v payload length (u32 LE) | crc32(payload) (u32 LE) | payload v}

    where the payload is one {!Bincodec}-encoded message (one tag byte,
    then the fields in order).  Decoding is total: a bad length, a CRC
    mismatch or a malformed payload raises {!Vyrd_pipeline.Bincodec.Corrupt},
    never an out-of-bounds access — the receiving end fails the session
    cleanly at the first damaged frame.

    {b Session shape.}  The client opens with {!Hello} carrying the protocol
    version and the {!Vyrd.Log.level} of the stream about to be sent (level
    negotiation: the server builds its per-session checker farm to match).
    The server answers {!Hello_ack} with an initial {e credit} — the number
    of events the client may send before it must wait for a {!Credit}
    replenishment.  Credits are granted only as the server's checker farm
    actually consumes events, so a slow checker exerts backpressure across
    the socket instead of buffering without bound.  {!Batch} carries events;
    {!Heartbeat}/{!Heartbeat_ack} keep an idle session alive across the
    server's idle timeout; {!Finish} asks for the drain: the server finishes
    its farm and replies with a {!Verdict} carrying the merged
    {!Vyrd.Report.t}, or with [spilled] set when overload degraded the
    session to spooling {!Vyrd_pipeline.Segment} files for later offline
    checking. *)

(** Protocol version carried in {!Hello} / {!Hello_ack}. *)
val version : int

(** Frames larger than this are rejected as corrupt before any allocation
    ({!read_frame}'s default [max_bytes]). *)
val max_frame_bytes : int

(** {1 Messages} *)

type hello = {
  h_version : int;
  h_level : Vyrd.Log.level;  (** level of the event stream to follow *)
  h_producer : string;  (** free-form client identification, for logs/metrics *)
}

type client_msg =
  | Hello of hello
  | Batch of Vyrd.Event.t array
  | Heartbeat
  | Finish  (** drain request: no more events, send the verdict *)
  | Resume_session of string
      (** cluster failover: sent right after {!Hello}, before any {!Batch} —
          the server replays the segment spool at this ({e server-local})
          path from its newest valid checkpoint frame and keeps the session
          open for further batches; answered with {!Resume_ack}.  The
          resumed events do not consume wire credit. *)
  | Checkpoint_request
      (** in-band barrier: snapshot the session farm covering exactly the
          events received so far; answered with {!Checkpoint_state} *)
  | Drain
      (** control connections only: stop accepting new sessions, let live
          ones run to their verdicts; answered with {!Status} *)
  | Status_request  (** health/metrics scrape; answered with {!Status} *)
  | Register of string
      (** opens a {e control connection} (sent instead of {!Hello}): the
          coordinator names this worker and the server answers {!Status};
          further {!Status_request}/{!Drain} messages poll it *)

(** The server's reply to {!Finish}. *)
type verdict = {
  v_report : Vyrd.Report.t;  (** merged farm report; trivial pass when spilled *)
  v_fail_index : int option;
      (** stream index (0-based, in submission order) of the event that
          triggered the violation *)
  v_events : int;  (** events the server consumed *)
  v_spilled : string option;
      (** when overload degraded the session: path of the segment spool
          holding the stream for later offline checking *)
}

(** A worker's health report, carried on control connections so the
    coordinator can piggyback liveness and scrape metrics in one poll. *)
type status = {
  st_draining : bool;
  st_active : int;  (** sessions currently open *)
  st_checking : int;  (** sessions holding a checking slot *)
  st_metrics : string;  (** {!Vyrd_pipeline.Metrics.encode} snapshot *)
}

type server_msg =
  | Hello_ack of { a_version : int; a_session : int; a_credit : int; a_spilling : bool }
  | Credit of int  (** additional events the client may send *)
  | Heartbeat_ack
  | Verdict of verdict
  | Error of string  (** session failed; no verdict will follow *)
  | Resume_ack of { ra_events : int; ra_resumed_at : int option; ra_replayed : int }
      (** spool replayed: [ra_events] events recovered and fed,
          [ra_resumed_at] the checkpoint used ([None] = full replay),
          [ra_replayed] events actually re-fed *)
  | Checkpoint_state of { cs_events : int; cs_state : Vyrd.Repr.t option }
      (** barrier result: farm state covering the first [cs_events] events,
          or [None] when the farm cannot snapshot (violation found, spilling
          session) *)
  | Status of status

(** {1 Encoding}

    [decode_*] raise {!Vyrd_pipeline.Bincodec.Corrupt} on malformed
    payloads. *)

val encode_client : client_msg -> string
val decode_client : string -> client_msg
val encode_server : server_msg -> string
val decode_server : string -> server_msg

(** The report codec used inside {!Verdict} (exposed for tests). *)
val put_report : Buffer.t -> Vyrd.Report.t -> unit

val get_report : string -> int -> Vyrd.Report.t * int

(** {1 Framing} *)

(** Raised by {!read_frame} on a clean end of stream at a frame boundary. *)
exception Closed

(** Raised by {!read_frame} when the socket's receive timeout expires
    (the server's idle/heartbeat timeout). *)
exception Timeout

(** [frame payload] is the framed bytes: length, CRC, payload. *)
val frame : string -> string

val write_frame : Unix.file_descr -> string -> unit

(** [read_frame fd] reads one whole frame and returns its payload.
    @raise Closed on EOF at a frame boundary.
    @raise Vyrd_pipeline.Bincodec.Corrupt on a torn frame, an oversized
      length, or a CRC mismatch.
    @raise Timeout when the descriptor's [SO_RCVTIMEO] expires. *)
val read_frame : ?max_bytes:int -> Unix.file_descr -> string

(** Convenience compositions used by both endpoints. *)
val send_client : Unix.file_descr -> client_msg -> unit

val send_server : Unix.file_descr -> server_msg -> unit
val recv_client : ?max_bytes:int -> Unix.file_descr -> client_msg
val recv_server : ?max_bytes:int -> Unix.file_descr -> server_msg

(** {1 Addresses} *)

type addr =
  | Unix_socket of string  (** path of a Unix-domain stream socket *)
  | Tcp of string * int  (** host, port *)

(** ["host:port"] (numeric port) parses as {!Tcp}, anything else as
    {!Unix_socket}. *)
val addr_of_string : string -> addr

val pp_addr : Format.formatter -> addr -> unit

(** [sockaddr_of_addr addr] resolves to a [Unix.sockaddr] ready for
    [connect]/[bind].  @raise Not_found when a TCP host does not resolve. *)
val sockaddr_of_addr : addr -> Unix.sockaddr
