(** The vyrdd verification daemon.

    One accept loop on a Unix-domain (or loopback TCP) stream socket; each
    connection becomes a {e session}: the client's {!Wire.Hello} names the
    {!Vyrd.Log.level} of the stream, the server builds a per-session
    {!Vyrd_pipeline.Farm} from its shard template at that level, feeds every
    {!Wire.Batch} through it, and answers {!Wire.Finish} with the merged
    verdict — the two-phase architecture of the paper (§4.2, §6.1) with the
    log finally crossing a process (and potentially machine) boundary.

    {b Flow control.}  Each session starts with a credit window of [window]
    events and is re-credited only as the farm consumes; a checker that
    falls behind therefore stalls the producer across the socket (bounded
    buffering end to end: socket buffer + one in-flight batch + the farm's
    rings).

    {b Overload degradation.}  When more than [max_sessions] sessions are
    checking concurrently, additional sessions are not refused and not
    dropped: their streams are spilled to {!Vyrd_pipeline.Segment} files
    under [spill_dir] for later offline checking ([vyrd-check check] reads
    them directly), and their verdict names the spool file.

    {b Failure containment.}  A torn frame, CRC mismatch, malformed payload,
    protocol-order violation or idle timeout fails {e that session} cleanly:
    the server sends {!Wire.Error} when the socket still accepts writes,
    tears the session's farm down, and keeps serving every other session. *)

module Farm = Vyrd_pipeline.Farm
module Metrics = Vyrd_pipeline.Metrics

type config = {
  addr : Wire.addr;
  shards : Vyrd.Log.level -> Farm.shard list;
      (** per-session farm template, built at the hello-negotiated level
          (e.g. [`Io] hellos get [`Io]-mode shards) *)
  capacity : int;  (** per-shard ring bound (default 4096) *)
  window : int;  (** credit window in events (default 8192) *)
  max_sessions : int;
      (** checking sessions beyond this spill to segment files (default 8) *)
  spill_dir : string;  (** where overload spools go (default [Filename.get_temp_dir_name ()]) *)
  idle_timeout : float;
      (** seconds without a frame before a session is failed; heartbeats
          reset it (default 30) *)
  metrics : Metrics.t;
}

(** [config ~addr shards] with the defaults above. *)
val config :
  ?capacity:int ->
  ?window:int ->
  ?max_sessions:int ->
  ?spill_dir:string ->
  ?idle_timeout:float ->
  ?metrics:Metrics.t ->
  addr:Wire.addr ->
  (Vyrd.Log.level -> Farm.shard list) ->
  config

type t

(** [start config] binds, listens and spawns the accept loop.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : config -> t

(** The actually-bound address — resolves port [0] to the kernel-assigned
    port for TCP. *)
val addr : t -> Wire.addr

val metrics : t -> Metrics.t

(** Sessions accepted so far. *)
val sessions : t -> int

(** Sessions currently open. *)
val active : t -> int

(** [stop t] shuts down gracefully: stop accepting, let every open session
    drain (serve it to its verdict) for up to [deadline] seconds (default
    10), then force-close the stragglers.  Idempotent.  The Unix socket
    file, if any, is unlinked. *)
val stop : ?deadline:float -> t -> unit
