(** The vyrdd verification daemon.

    One accept loop on a Unix-domain (or loopback TCP) stream socket; each
    connection becomes a {e session}: the client's {!Wire.Hello} names the
    {!Vyrd.Log.level} of the stream, the server builds a per-session
    {!Vyrd_pipeline.Farm} from its shard template at that level, feeds every
    {!Wire.Batch} through it, and answers {!Wire.Finish} with the merged
    verdict — the two-phase architecture of the paper (§4.2, §6.1) with the
    log finally crossing a process (and potentially machine) boundary.

    {b Flow control.}  Each session starts with a credit window of [window]
    events and is re-credited only as the farm consumes; a checker that
    falls behind therefore stalls the producer across the socket (bounded
    buffering end to end: socket buffer + one in-flight batch + the farm's
    rings).

    {b Overload degradation.}  When more than [max_sessions] sessions are
    checking concurrently, additional sessions are not refused and not
    dropped: their streams are spilled to {!Vyrd_pipeline.Segment} files
    under [spill_dir] for later offline checking ([vyrd-check check] reads
    them directly), and their verdict names the spool file.

    {b Failure containment.}  A torn frame, CRC mismatch, malformed payload,
    protocol-order violation or idle timeout fails {e that session} cleanly:
    the server sends {!Wire.Error} when the socket still accepts writes,
    tears the session's farm down, and keeps serving every other session. *)

module Farm = Vyrd_pipeline.Farm
module Metrics = Vyrd_pipeline.Metrics

type config = {
  addr : Wire.addr;
  shards : Vyrd.Log.level -> Farm.shard list;
      (** per-session farm template, built at the hello-negotiated level
          (e.g. [`Io] hellos get [`Io]-mode shards) *)
  capacity : int;  (** per-shard ring bound (default 4096) *)
  window : int;  (** credit window in events (default 8192) *)
  max_sessions : int;
      (** checking sessions beyond this spill to segment files (default 8) *)
  spill_dir : string;  (** where overload spools go (default [Filename.get_temp_dir_name ()]) *)
  idle_timeout : float;
      (** seconds without a frame before a session is failed; heartbeats
          reset it (default 30) *)
  recheck_spills : bool;
      (** re-check each spilled spool offline once its session finishes and
          a checking slot frees up, instead of leaving all spilled work to
          an operator (default false) *)
  checkpoint_events : int;
      (** checkpoint-frame spacing (in events) that spill re-checks append
          to the spool, so the next pass over it resumes instead of
          replaying (default 50_000) *)
  analyze : bool;
      (** attach fresh {!Vyrd_analysis.Pass} instances (picked by the
          session's hello level) to every session farm: diagnostics counts
          surface in the [analysis.*] metrics family (default false) *)
  monitors : unit -> Vyrd_analysis.Pass.t list;
      (** fresh temporal-monitor passes to attach to every session farm
          (monitor state is per-stream, hence a factory; default none).
          Their violation counts roll up into [net.monitor_events] /
          [net.monitor_violations]. *)
  metrics : Metrics.t;
}

(** [config ~addr shards] with the defaults above. *)
val config :
  ?capacity:int ->
  ?window:int ->
  ?max_sessions:int ->
  ?spill_dir:string ->
  ?idle_timeout:float ->
  ?recheck_spills:bool ->
  ?checkpoint_events:int ->
  ?analyze:bool ->
  ?monitors:(unit -> Vyrd_analysis.Pass.t list) ->
  ?metrics:Metrics.t ->
  addr:Wire.addr ->
  (Vyrd.Log.level -> Farm.shard list) ->
  config

type t

(** [start config] binds, listens and spawns the accept loop.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : config -> t

(** The actually-bound address — resolves port [0] to the kernel-assigned
    port for TCP. *)
val addr : t -> Wire.addr

val metrics : t -> Metrics.t

(** Sessions accepted so far. *)
val sessions : t -> int

(** Data sessions currently open (control connections excluded). *)
val active : t -> int

(** {1 Cluster membership}

    A coordinator opens a {e control connection} ({!Wire.Register} instead
    of a hello) to poll health ({!Wire.Status_request}) and order a drain
    ({!Wire.Drain}).  These accessors expose the same state in-process. *)

(** Stop accepting new data sessions (their hellos are refused with an
    error); live sessions keep running to their verdicts.  This is the
    drain hook a cluster uses to rotate a worker out without abandoning
    work. *)
val drain : t -> unit

val draining : t -> bool

(** The name the coordinator registered this worker under, if any. *)
val registered : t -> string option

(** [recheck t ~path] checks the spilled spool at [path] through the
    server's farm template, resuming from its latest usable checkpoint
    frame ({!Vyrd_pipeline.Resume.resume_farm}) and appending fresh
    checkpoints every [checkpoint_events].  This is the routine the
    [recheck_spills] mode runs opportunistically after a spilled session's
    verdict, under the same [max_sessions] slot accounting as live
    checking; counted in the [net.spill_recheck*] metrics. *)
val recheck : t -> path:string -> Vyrd_pipeline.Resume.outcome

(** [stop t] shuts down gracefully: stop accepting, let every open session
    drain (serve it to its verdict) for up to [deadline] seconds (default
    10), then force-close the stragglers.  Idempotent.  The Unix socket
    file, if any, is unlinked. *)
val stop : ?deadline:float -> t -> unit
