open Vyrd
module Tid = Vyrd_sched.Tid

type shard = {
  sh_name : string;
  sh_spec : Spec.t;
  sh_mode : Checker.mode;
  sh_view : View.t option;
  sh_invariants : Checker.invariant list;
}

let shard ?(mode = `Io) ?view ?(invariants = []) name spec =
  { sh_name = name; sh_spec = spec; sh_mode = mode; sh_view = view;
    sh_invariants = invariants }

type shard_result = {
  sr_name : string;
  sr_report : Report.t;
  sr_fail_index : int option;
  sr_high_water : int;
  sr_stall_ns : int;
  sr_events : int;
}

type result = {
  merged : Report.t;
  shards : shard_result list;
  fed : int;
  analysis : Vyrd_analysis.Pass.summary list;
}

(* Lane traffic: indexed events, plus checkpoint barriers.  A [Snap] token
   travels the ring like any event, so when the lane answers it has
   consumed exactly the events routed before the barrier. *)
type msg =
  | Ev of int * Event.t
  | Snap of (int * Repr.t option) Squeue.t  (* reply: lane index, snapshot *)

type lane = {
  l_index : int;
  l_shard : shard;
  l_ring : msg Ring.t;
  (* Router-side pending slice: events accumulate here and enter the ring
     through one [Ring.push_batch] per [route_batch] events, instead of one
     mutex handshake each.  Only the routing thread touches it. *)
  l_buf : msg array;
  mutable l_pending : int;
  l_domain : (Report.t * int option * int) Domain.t;
}

(* The analysis lane: one extra domain running the incremental passes over
   the {e whole} stream in global feed order.  Refinement lanes only see the
   events their checkers consume (reads and lock events are skipped at the
   router), so the passes — which exist precisely to look at lock events —
   get their own ring.  The lane takes no part in the checkpoint barrier:
   pass state is not checkpointed, so after a restore the passes see only
   the resumed suffix (documented as advisory). *)
type alane = {
  a_ring : msg Ring.t;
  a_buf : msg array;
  mutable a_pending : int;
  a_domain : Vyrd_analysis.Pass.summary list Domain.t;
}

type t = {
  lanes : lane array;
  alane : alane option;
  owners : (string, int) Hashtbl.t;  (* method -> lane, memoized kind probes *)
  current : (Tid.t, int) Hashtbl.t;  (* thread -> lane of its open call *)
  mutable fed : int;
  mutable fed_unsynced : int;  (* events not yet folded into [m_events] *)
  metrics : Metrics.t;
  m_events : Metrics.counter;
  m_commits : Metrics.counter;
  m_skipped : Metrics.counter;
  mutable logs : Log.t list;  (* attached logs, for the dropped-by-level count *)
  mutable finished : result option;
}

(* Batch granularity for the per-shard checking-latency histogram. *)
let batch = 4096

(* Router-side pending-slice size.  Big enough to amortize the ring mutex
   to noise, small enough that the extra in-flight buffering per lane stays
   negligible next to the ring capacity. *)
let route_batch = 256

let consume index (sh : shard) checker ring metrics =
  let hist = Metrics.histogram metrics ("farm.batch_ns." ^ sh.sh_name) in
  let checked = Metrics.counter metrics "farm.events_checked" in
  let fail = ref None in
  let count = ref 0 in
  let since = ref 0 in
  let t0 = ref (Mclock.now_ns ()) in
  (* one lock acquisition drains a whole slice of the ring *)
  let scratch : msg option array = Array.make route_batch None in
  let rec loop () =
    let n = Ring.pop_batch ring scratch in
    if n = 0 then (Checker.report checker, !fail, !count)
    else begin
      let evs = ref 0 in
      for k = 0 to n - 1 do
        (match scratch.(k) with
        | Some (Ev (idx, ev)) ->
          incr evs;
          (match Checker.feed checker ev with
          | Some _ when !fail = None -> fail := Some idx
          | _ -> ())
        | Some (Snap reply) -> Squeue.push reply (index, Checker.snapshot checker)
        | None -> ());
        scratch.(k) <- None
      done;
      count := !count + !evs;
      Metrics.add checked !evs;
      since := !since + !evs;
      if !since >= batch then begin
        let t1 = Mclock.now_ns () in
        Metrics.observe hist (t1 - !t0);
        t0 := t1;
        since := 0
      end;
      loop ()
    end
  in
  loop ()

let consume_analysis (passes : Vyrd_analysis.Pass.t list) ring metrics =
  let fed = Metrics.counter metrics "analysis.events" in
  let scratch : msg option array = Array.make route_batch None in
  let rec loop () =
    let n = Ring.pop_batch ring scratch in
    if n = 0 then List.map (fun (p : Vyrd_analysis.Pass.t) -> p.finish ()) passes
    else begin
      let evs = ref 0 in
      for k = 0 to n - 1 do
        (match scratch.(k) with
        | Some (Ev (_, ev)) ->
          incr evs;
          List.iter (fun (p : Vyrd_analysis.Pass.t) -> p.feed ev) passes
        | Some (Snap _) | None -> ());
        scratch.(k) <- None
      done;
      Metrics.add fed !evs;
      loop ()
    end
  in
  loop ()

let format_tag = "farm/1"

(* A farm checkpoint is the router state plus every lane's checker
   snapshot: [fed | current thread->lane routing | (name, state) lanes]. *)
let parse_restore shards repr =
  match Ckpt.list (Ckpt.untag format_tag repr) with
  | [ fed; current; lane_states ] ->
    let fed = Ckpt.int fed in
    if fed < 0 then Ckpt.malformed "farm snapshot: negative event cursor";
    let n = List.length shards in
    let current =
      List.map
        (fun p ->
          let tid, lane = Ckpt.pair p in
          let lane = Ckpt.int lane in
          if lane < 0 || lane >= n then
            Ckpt.malformed "farm snapshot: routing entry to lane %d of %d" lane n;
          (Ckpt.int tid, lane))
        (Ckpt.list current)
    in
    let lane_states =
      List.map
        (fun p ->
          let name, st = Ckpt.pair p in
          (Ckpt.str name, st))
        (Ckpt.list lane_states)
    in
    if List.length lane_states <> n then
      Ckpt.malformed "farm snapshot: %d lane states for %d shards"
        (List.length lane_states) n;
    List.iter2
      (fun sh (name, _) ->
        if not (String.equal sh.sh_name name) then
          Ckpt.malformed "farm snapshot: lane %S where shard %S runs" name sh.sh_name)
      shards lane_states;
    (fed, current, List.map snd lane_states)
  | _ -> Ckpt.malformed "farm snapshot: bad payload shape"

let start ?(capacity = 4096) ?metrics ?restore ?(passes = []) ~level shards =
  if shards = [] then invalid_arg "Farm.start: no shards";
  List.iter
    (fun sh ->
      match sh.sh_mode with
      | `Io -> ()
      | `View ->
        if sh.sh_view = None then
          invalid_arg
            (Printf.sprintf "Farm.start: `View shard %S has no view definition"
               sh.sh_name);
        (match level with
        | `None | `Io ->
          invalid_arg
            (Printf.sprintf
               "Farm.start: `View shard %S cannot check a log recorded below \
                level `View"
               sh.sh_name)
        | `View | `Full -> ()))
    shards;
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let restore = Option.map (parse_restore shards) restore in
  (* checkers are built (and restored) here in the caller, not in the
     spawned domains, so a malformed checkpoint raises synchronously and
     the caller can fall back before any domain exists *)
  let checkers =
    List.map
      (fun sh ->
        Checker.create ~mode:sh.sh_mode ?view:sh.sh_view
          ~invariants:sh.sh_invariants sh.sh_spec)
      shards
  in
  (match restore with
  | Some (_, _, states) -> List.iter2 Checker.restore checkers states
  | None -> ());
  let dummy = Ev (-1, Event.Commit { tid = -1 }) in
  let lanes =
    Array.of_list
      (List.mapi
         (fun i (sh, checker) ->
           let ring = Ring.create ~capacity () in
           let domain = Domain.spawn (fun () -> consume i sh checker ring metrics) in
           { l_index = i; l_shard = sh; l_ring = ring;
             l_buf = Array.make route_batch dummy; l_pending = 0;
             l_domain = domain })
         (List.combine shards checkers))
  in
  let alane =
    match passes with
    | [] -> None
    | passes ->
      let ring = Ring.create ~capacity () in
      Metrics.record
        (Metrics.gauge metrics "analysis.passes")
        (List.length passes);
      let domain = Domain.spawn (fun () -> consume_analysis passes ring metrics) in
      Some { a_ring = ring; a_buf = Array.make route_batch dummy; a_pending = 0;
             a_domain = domain }
  in
  let t =
    {
      lanes;
      alane;
      owners = Hashtbl.create 64;
      current = Hashtbl.create 16;
      fed = (match restore with Some (fed, _, _) -> fed | None -> 0);
      fed_unsynced = 0;
      metrics;
      m_events = Metrics.counter metrics "farm.events_fed";
      m_commits = Metrics.counter metrics "farm.commits";
      m_skipped = Metrics.counter metrics "farm.events_skipped";
      logs = [];
      finished = None;
    }
  in
  (match restore with
  | Some (_, current, _) ->
    List.iter (fun (tid, lane) -> Hashtbl.replace t.current tid lane) current
  | None -> ());
  t

(* Which lane's specification knows [mid]?  First match wins, exactly like
   Spec_compose routing; memoized because [kind] probes cost an exception
   on every miss.  Unknown methods go to lane 0, whose checker reports the
   ill-formed log. *)
let owner t mid =
  match Hashtbl.find_opt t.owners mid with
  | Some i -> i
  | None ->
    let n = Array.length t.lanes in
    let rec probe i =
      if i >= n then 0
      else
        let module S = (val t.lanes.(i).l_shard.sh_spec : Spec.S) in
        match S.kind mid with
        | _ -> i
        | exception Invalid_argument _ -> probe (i + 1)
    in
    let i = probe 0 in
    Hashtbl.replace t.owners mid i;
    i

let flush_lane l =
  if l.l_pending > 0 then begin
    Ring.push_batch l.l_ring ~len:l.l_pending l.l_buf;
    l.l_pending <- 0
  end

let flush_alane a =
  if a.a_pending > 0 then begin
    Ring.push_batch a.a_ring ~len:a.a_pending a.a_buf;
    a.a_pending <- 0
  end

let apush t idx ev =
  match t.alane with
  | None -> ()
  | Some a ->
    a.a_buf.(a.a_pending) <- Ev (idx, ev);
    a.a_pending <- a.a_pending + 1;
    if a.a_pending = Array.length a.a_buf then flush_alane a

let flush t =
  Array.iter flush_lane t.lanes;
  Option.iter flush_alane t.alane;
  if t.fed_unsynced > 0 then begin
    Metrics.add t.m_events t.fed_unsynced;
    t.fed_unsynced <- 0
  end

let push t i idx ev =
  let l = t.lanes.(i) in
  l.l_buf.(l.l_pending) <- Ev (idx, ev);
  l.l_pending <- l.l_pending + 1;
  if l.l_pending = Array.length l.l_buf then flush_lane l

let broadcast t idx ev =
  for i = 0 to Array.length t.lanes - 1 do
    push t i idx ev
  done

let feed t ev =
  if t.finished <> None then invalid_arg "Farm.feed: farm already finished";
  let idx = t.fed in
  t.fed <- idx + 1;
  (* the events-fed counter is synced in slices, like the rings *)
  t.fed_unsynced <- t.fed_unsynced + 1;
  if t.fed_unsynced >= route_batch then begin
    Metrics.add t.m_events t.fed_unsynced;
    t.fed_unsynced <- 0
  end;
  (* the analysis lane sees the whole stream in feed order — including the
     read/lock events the refinement router below skips *)
  apush t idx ev;
  match ev with
  | Event.Call { tid; mid; _ } ->
    let i = owner t mid in
    Hashtbl.replace t.current tid i;
    push t i idx ev
  | Event.Return { tid; mid; _ } ->
    let i =
      match Hashtbl.find_opt t.current tid with
      | Some i -> i
      | None -> owner t mid
    in
    Hashtbl.remove t.current tid;
    push t i idx ev
  | Event.Commit { tid } -> (
    Metrics.incr t.m_commits;
    match Hashtbl.find_opt t.current tid with
    | Some i -> push t i idx ev
    | None ->
      (* commit outside any execution: lane 0's checker reports it *)
      push t 0 idx ev)
  | Event.Write { tid; _ } | Event.Block_begin { tid } | Event.Block_end { tid }
    -> (
    match Hashtbl.find_opt t.current tid with
    | Some i -> push t i idx ev
    | None ->
      (* no open call: structure initialization (or a daemon outside a
         logged method) — every shard's shadow replay needs to see it *)
      broadcast t idx ev)
  | Event.Read _ | Event.Acquire _ | Event.Release _ ->
    (* consumed by no refinement checker (only by offline analyses) *)
    Metrics.incr t.m_skipped

let feed_batch t evs =
  (* same routing decisions as event-by-event [feed]; the per-lane pending
     slices turn the whole array into a handful of [Ring.push_batch]es *)
  Array.iter (feed t) evs

let attach t log =
  t.logs <- log :: t.logs;
  Log.subscribe log (feed t)

let events_fed t = t.fed

(* Barrier checkpoint: a [Snap] token goes down every ring, so each lane
   answers only after consuming everything routed before it — together the
   lane snapshots cover exactly the first [t.fed] events of the stream.
   Call from the feeding thread (or a log listener), like {!feed}. *)
let checkpoint t =
  if t.finished <> None then None
  else begin
    (* pending slices must reach the rings first, so the barrier token sits
       after every event routed before it — mid-batch and batch-boundary
       checkpoints are indistinguishable *)
    flush t;
    let reply = Squeue.create () in
    Array.iter (fun l -> Ring.push l.l_ring (Snap reply)) t.lanes;
    let n = Array.length t.lanes in
    let states = Array.make n None in
    for _ = 1 to n do
      let i, st = Squeue.pop reply in
      states.(i) <- Option.map (fun s -> `Saved s) st
    done;
    if Array.exists (fun s -> s = None) states then None
      (* some lane cannot snapshot (violation found, or the spec declines) *)
    else begin
      let current =
        Hashtbl.fold (fun tid lane acc -> (tid, lane) :: acc) t.current []
        |> List.sort compare
        |> List.map (fun (tid, lane) -> Repr.Pair (Repr.Int tid, Repr.Int lane))
      in
      let lane_states =
        Array.to_list
          (Array.mapi
             (fun i s ->
               match s with
               | Some (`Saved st) ->
                 Repr.Pair (Repr.Str t.lanes.(i).l_shard.sh_name, st)
               | None -> assert false)
             states)
      in
      Some
        (Ckpt.tagged format_tag
           (Repr.List [ Repr.Int t.fed; Repr.List current; Repr.List lane_states ]))
    end
  end

(* Deterministic merge: the violation whose triggering event has the lowest
   global index wins, ties broken by shard order — independent of how the
   checker domains were scheduled. *)
let merge lanes_results fed =
  let stats =
    List.fold_left
      (fun (acc : Report.stats) (sr : shard_result) ->
        {
          Report.events_processed =
            acc.Report.events_processed
            + sr.sr_report.Report.stats.Report.events_processed;
          methods_checked =
            acc.Report.methods_checked
            + sr.sr_report.Report.stats.Report.methods_checked;
          commits_resolved =
            acc.Report.commits_resolved
            + sr.sr_report.Report.stats.Report.commits_resolved;
          per_method =
            acc.Report.per_method @ sr.sr_report.Report.stats.Report.per_method;
          queue_high_water = max acc.Report.queue_high_water sr.sr_high_water;
        })
      {
        Report.events_processed = 0;
        methods_checked = 0;
        commits_resolved = 0;
        per_method = [];
        queue_high_water = 0;
      }
      lanes_results
  in
  let stats = { stats with Report.per_method = List.sort compare stats.Report.per_method } in
  let first =
    List.fold_left
      (fun acc sr ->
        match (sr.sr_fail_index, sr.sr_report.Report.outcome) with
        | Some idx, Report.Fail v -> (
          match acc with
          | Some (best, _) when best <= idx -> acc
          | _ -> Some (idx, v))
        | _ -> acc)
      None lanes_results
  in
  let outcome =
    match first with Some (_, v) -> Report.Fail v | None -> Report.Pass
  in
  ignore fed;
  { Report.outcome; stats }

let min_fail_index (r : result) =
  List.fold_left
    (fun acc sr ->
      match (acc, sr.sr_fail_index) with
      | Some a, Some b -> Some (min a b)
      | None, x | x, None -> x)
    None r.shards

let finish t =
  match t.finished with
  | Some r -> r
  | None ->
    flush t;
    Array.iter (fun l -> Ring.close l.l_ring) t.lanes;
    let results =
      Array.to_list
        (Array.map
           (fun l ->
             let report, fail_idx, consumed = Domain.join l.l_domain in
             {
               sr_name = l.l_shard.sh_name;
               sr_report = report;
               sr_fail_index = fail_idx;
               sr_high_water = Ring.high_water l.l_ring;
               sr_stall_ns = Ring.stall_ns l.l_ring;
               sr_events = consumed;
             })
           t.lanes)
    in
    let merged = merge results t.fed in
    (* fold the end-of-run readings into the metrics registry *)
    let stall = Metrics.counter t.metrics "farm.stall_ns" in
    let violations = Metrics.counter t.metrics "farm.violations" in
    List.iter
      (fun sr ->
        Metrics.record
          (Metrics.gauge t.metrics ("farm.high_water." ^ sr.sr_name))
          sr.sr_high_water;
        Metrics.add stall sr.sr_stall_ns;
        if not (Report.is_pass sr.sr_report) then Metrics.incr violations)
      results;
    let dropped = Metrics.counter t.metrics "log.events_dropped_by_level" in
    List.iter (fun log -> Metrics.add dropped (Log.dropped log)) t.logs;
    let analysis =
      match t.alane with
      | None -> []
      | Some a ->
        Ring.close a.a_ring;
        let summaries = Domain.join a.a_domain in
        let errors = Metrics.counter t.metrics "analysis.errors" in
        let warnings = Metrics.counter t.metrics "analysis.warnings" in
        List.iter
          (fun (s : Vyrd_analysis.Pass.summary) ->
            Metrics.add errors s.errors;
            Metrics.add warnings s.warnings;
            Metrics.record
              (Metrics.gauge t.metrics ("analysis.errors." ^ s.pass))
              s.errors)
          summaries;
        summaries
    in
    let r = { merged; shards = results; fed = t.fed; analysis } in
    t.finished <- Some r;
    r
