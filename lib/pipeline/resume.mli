(** Checkpointed checking and O(suffix) re-checking of binary spools.

    VYRD's two-phase design re-checks logs after the fact — spilled vyrdd
    sessions, crash-recovered segments, plain [vyrd_check] reruns — and
    every such re-check used to replay the specification and the shadow
    replay from event zero.  This module threads {!Vyrd.Checker.snapshot}
    through {!Segment} checkpoint frames so a re-check restores the latest
    usable checkpoint and feeds only the event suffix.

    {b Resume protocol.}  {!resume} recovers the spool (clean CRC prefix,
    as always), collects its checkpoint frames, and tries them newest
    first: restore into a fresh checker, feed the suffix.  A checkpoint
    that fails to restore — wrong format tag, version skew, spec [load]
    rejection — falls back to the next older one and finally to a full
    replay of the recovered events.  Fallback changes how much is
    replayed, never the verdict: for every checkpoint position,
    resume-verdict = offline-verdict with the same fail index. *)

type outcome = {
  report : Vyrd.Report.t;
  fail_index : int option;
      (** global stream index of the violating event, as in {!Farm} *)
  total : int;  (** events recovered from the spool (or fed, for producers) *)
  replayed : int;  (** events actually fed through a checker *)
  resumed_at : int option;
      (** event index of the checkpoint used; [None] = full replay *)
  truncated : bool;  (** the spool had a torn or corrupt tail *)
  checkpoints : int;  (** valid checkpoint frames seen (or written) *)
}

(** [check_to_spool ~every ~path log spec] spools [log] to a fresh binary
    segment file at [path] while checking it, interleaving a checkpoint
    frame every [every] events (when the checker can snapshot). *)
val check_to_spool :
  ?mode:Vyrd.Checker.mode ->
  ?view:Vyrd.View.t ->
  ?invariants:Vyrd.Checker.invariant list ->
  ?segment_bytes:int ->
  ?rotate_bytes:int ->
  every:int ->
  path:string ->
  Vyrd.Log.t ->
  Vyrd.Spec.t ->
  outcome

(** [annotate ~every ~path spec] re-checks an existing binary spool and
    appends checkpoint frames to it every [every] events, so the {e next}
    re-check resumes instead of replaying.  A truncated spool is checked
    but not annotated (frames after a torn tail would be unreachable). *)
val annotate :
  ?mode:Vyrd.Checker.mode ->
  ?view:Vyrd.View.t ->
  ?invariants:Vyrd.Checker.invariant list ->
  every:int ->
  path:string ->
  Vyrd.Spec.t ->
  outcome

(** [resume ~path spec] checks the spool at [path] from its latest usable
    checkpoint (see the resume protocol above).
    @param at only use checkpoints covering at most [at] events — the
      knob the equality tests and the resume benchmark turn to pick a
      resume position; the whole suffix is always checked. *)
val resume :
  ?mode:Vyrd.Checker.mode ->
  ?view:Vyrd.View.t ->
  ?invariants:Vyrd.Checker.invariant list ->
  ?at:int ->
  path:string ->
  Vyrd.Spec.t ->
  outcome

(** {!resume} over an already-recovered {!Segment.resumable} — lets a
    benchmark separate disk recovery from checking time. *)
val resume_recovered :
  ?mode:Vyrd.Checker.mode ->
  ?view:Vyrd.View.t ->
  ?invariants:Vyrd.Checker.invariant list ->
  ?at:int ->
  Segment.resumable ->
  Vyrd.Spec.t ->
  outcome

(** [resume_farm ~shards ~path ()] is {!resume} for multi-structure spools
    checked by a {!Farm}: the farm restores router and lane state from the
    latest usable farm checkpoint and feeds only the suffix.  [shards] maps
    the spool's recorded level to the shard list (a [Server.config] shape).
    @param annotate_every additionally append fresh farm checkpoints to the
      spool every so many events, plus one covering the full spool — so a
      spilled session's {e next} re-check is O(1) in replay work.  Skipped
      on truncated spools. *)
val resume_farm :
  ?capacity:int ->
  ?metrics:Metrics.t ->
  ?at:int ->
  ?annotate_every:int ->
  shards:(Vyrd.Log.level -> Farm.shard list) ->
  path:string ->
  unit ->
  outcome

(** A farm handed back {e live} after a resume: the spool's events are fed
    but nothing is finished, so the caller can keep streaming into it. *)
type resumed_farm = {
  rf_farm : Farm.t;
  rf_total : int;  (** events recovered from the spool and already fed *)
  rf_replayed : int;  (** events actually fed (suffix after the checkpoint) *)
  rf_resumed_at : int option;  (** [None] = full replay *)
  rf_truncated : bool;
  rf_checkpoints : int;
}

(** [resume_farm_open ~shards ~path ()] is {!resume_farm} stopped just
    before the drain: restore the newest usable checkpoint (same fallback
    chain — damage changes replay cost, never verdicts), feed the suffix,
    and return the farm still open.  This is how a worker adopts a
    half-streamed session during cluster failover: replay the coordinator's
    spool to the point the stream died, then continue from the wire.
    Global fail indices are preserved across the restore, so verdicts are
    identical to a single uninterrupted session. *)
val resume_farm_open :
  ?capacity:int ->
  ?metrics:Metrics.t ->
  ?passes:Vyrd_analysis.Pass.t list ->
  ?at:int ->
  shards:(Vyrd.Log.level -> Farm.shard list) ->
  path:string ->
  unit ->
  resumed_farm
