(** Binary log segments: durable spool between logging and checking.

    VYRD's architecture decouples cheap in-process logging from (possibly
    offline, possibly remote) checking (§4.2, §6.1).  This module is the
    disk format of that decoupling: a stream of length-prefixed,
    CRC32-checksummed segments of {!Bincodec}-encoded events, preceded by a
    header recording the {!Vyrd.Log.level} — the binary counterpart of the
    textual [# vyrd-log level=...] header.

    {b File layout.}  [magic (6 bytes) | level (1 byte)] then zero or more
    segments, each [payload length (u32 LE) | crc32(payload) (u32 LE) |
    event count (u32 LE) | payload].  A {!writer} seals a segment when its
    buffer reaches [segment_bytes] and, when [rotate_bytes] is set, starts a
    new numbered file ([<path>.00000], [<path>.00001], ...) once the current
    file exceeds that size — so a long run spools to disk with bounded
    buffering and bounded per-file size.

    {b Crash recovery.}  A reader validates each segment's length and CRC
    before decoding; at the first torn or corrupt frame it stops and returns
    everything before it.  Every event of every CRC-valid prefix segment is
    preserved — a crash mid-write costs at most the unsealed tail. *)

(** First bytes of every segment file. *)
val magic : string

(** [is_binary path] sniffs whether [path] starts with {!magic} (false for
    missing or short files) — used to route between the binary reader and
    the textual {!Vyrd.Log.of_file}. *)
val is_binary : string -> bool

(** {1 Writing} *)

type writer

(** [create_writer ~level path] opens a streaming writer.  Not thread-safe:
    serialize appends externally (a {!Vyrd.Log} listener already runs under
    the log lock).
    @param segment_bytes seal a segment once its payload reaches this size
      (default 65536).
    @param rotate_bytes when given, rotate to a new numbered file once the
      current one exceeds this size; without it everything goes to [path]. *)
val create_writer :
  ?segment_bytes:int -> ?rotate_bytes:int -> level:Vyrd.Log.level -> string -> writer

val append : writer -> Vyrd.Event.t -> unit

(** Seal the buffered events into a segment now (durability point). *)
val flush : writer -> unit

(** [close w] flushes and closes; further appends raise [Invalid_argument]. *)
val close : writer -> unit

(** [attach w log] subscribes the writer to every subsequently appended
    event. *)
val attach : writer -> Vyrd.Log.t -> unit

(** Files written so far, in stream order. *)
val writer_files : writer -> string list

(** Total bytes written (framing included), across all files. *)
val writer_bytes : writer -> int

val writer_segments : writer -> int
val writer_events : writer -> int

(** Checkpoint frames written so far. *)
val writer_checkpoints : writer -> int

(** [append_checkpoint w state] seals any buffered events, then writes a
    {e checkpoint frame}: same [len|crc|count] framing, but with bit 31 of
    the count word set and a payload of [events-so-far (uvarint) | state
    ({!Bincodec.put_repr})].  The frame means "after the first
    [writer_events w] events of this stream, the checker state was
    [state]".  Readers that are only after the events skip these frames;
    {!read_from_checkpoint} collects them. *)
val append_checkpoint : writer -> Vyrd.Repr.t -> unit

(** [write_file path log] spools a whole in-memory log to a single binary
    file. *)
val write_file : ?segment_bytes:int -> string -> Vyrd.Log.t -> unit

(** {1 Reading} *)

type recovered = {
  log : Vyrd.Log.t;  (** events of every CRC-valid segment, at the header level *)
  segments : int;
  bytes : int;  (** bytes consumed as valid *)
  truncated : bool;  (** a torn or corrupt tail was discarded *)
  files : string list;
}

(** @raise Bincodec.Corrupt when [path] is not a segment file at all (bad
    magic) — truncated or corrupt {e tails} are recovered, not raised. *)
val read_file : string -> recovered

(** [read_files paths] concatenates a rotation sequence in list order.
    Corruption in any file ends the stream there (marked [truncated]). *)
val read_files : string list -> recovered

(** [read_prefix path] reads [path] itself when it exists, otherwise the
    sorted rotation set [path.00000], [path.00001], ... *)
val read_prefix : string -> recovered

(** {1 Checkpoints}

    A checkpoint frame carries an opaque checker state together with the
    number of stream events it covers.  Corruption handling follows the
    segment rules: a torn or CRC-invalid checkpoint frame ends the clean
    prefix exactly like a torn event segment (everything before it is
    recovered); a CRC-valid frame whose payload does not decode is skipped
    — either way resume falls back to an earlier checkpoint or a full
    replay of the recovered events, never to a different verdict. *)

type checkpoint = {
  ck_events : int;  (** stream events preceding (covered by) this frame *)
  ck_state : Vyrd.Repr.t;  (** opaque checker snapshot *)
}

type resumable = {
  r_recovered : recovered;
  r_checkpoints : checkpoint list;
      (** valid checkpoints in stream order; a frame claiming to cover more
          events than precede it is dropped here *)
}

(** [read_from_checkpoint path] reads like {!read_prefix} but also collects
    every valid checkpoint frame. *)
val read_from_checkpoint : string -> resumable

(** Latest checkpoint covering at most [at] events (default: all recovered
    events). *)
val latest_checkpoint : ?at:int -> resumable -> checkpoint option

(** [append_checkpoint_file path ~events state] appends one checkpoint
    frame to an existing spool ([path] or the last file of its rotation
    set) without rewriting any events — how a re-check annotates a spool it
    just verified.  [events] is the number of events the state covers;
    frames claiming more events than the spool holds are ignored by
    readers. *)
val append_checkpoint_file : string -> events:int -> Vyrd.Repr.t -> unit
