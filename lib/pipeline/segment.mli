(** Binary log segments: durable spool between logging and checking.

    VYRD's architecture decouples cheap in-process logging from (possibly
    offline, possibly remote) checking (§4.2, §6.1).  This module is the
    disk format of that decoupling: a stream of length-prefixed,
    CRC32-checksummed segments of {!Bincodec}-encoded events, preceded by a
    header recording the {!Vyrd.Log.level} — the binary counterpart of the
    textual [# vyrd-log level=...] header.

    {b File layout.}  [magic (6 bytes) | level (1 byte)] then zero or more
    segments, each [payload length (u32 LE) | crc32(payload) (u32 LE) |
    event count (u32 LE) | payload].  A {!writer} seals a segment when its
    buffer reaches [segment_bytes] and, when [rotate_bytes] is set, starts a
    new numbered file ([<path>.00000], [<path>.00001], ...) once the current
    file exceeds that size — so a long run spools to disk with bounded
    buffering and bounded per-file size.

    {b Crash recovery.}  A reader validates each segment's length and CRC
    before decoding; at the first torn or corrupt frame it stops and returns
    everything before it.  Every event of every CRC-valid prefix segment is
    preserved — a crash mid-write costs at most the unsealed tail. *)

(** First bytes of every segment file. *)
val magic : string

(** [is_binary path] sniffs whether [path] starts with {!magic} (false for
    missing or short files) — used to route between the binary reader and
    the textual {!Vyrd.Log.of_file}. *)
val is_binary : string -> bool

(** {1 Writing} *)

type writer

(** [create_writer ~level path] opens a streaming writer.  Not thread-safe:
    serialize appends externally (a {!Vyrd.Log} listener already runs under
    the log lock).
    @param segment_bytes seal a segment once its payload reaches this size
      (default 65536).
    @param rotate_bytes when given, rotate to a new numbered file once the
      current one exceeds this size; without it everything goes to [path]. *)
val create_writer :
  ?segment_bytes:int -> ?rotate_bytes:int -> level:Vyrd.Log.level -> string -> writer

val append : writer -> Vyrd.Event.t -> unit

(** Seal the buffered events into a segment now (durability point). *)
val flush : writer -> unit

(** [close w] flushes and closes; further appends raise [Invalid_argument]. *)
val close : writer -> unit

(** [attach w log] subscribes the writer to every subsequently appended
    event. *)
val attach : writer -> Vyrd.Log.t -> unit

(** Files written so far, in stream order. *)
val writer_files : writer -> string list

(** Total bytes written (framing included), across all files. *)
val writer_bytes : writer -> int

val writer_segments : writer -> int
val writer_events : writer -> int

(** [write_file path log] spools a whole in-memory log to a single binary
    file. *)
val write_file : ?segment_bytes:int -> string -> Vyrd.Log.t -> unit

(** {1 Reading} *)

type recovered = {
  log : Vyrd.Log.t;  (** events of every CRC-valid segment, at the header level *)
  segments : int;
  bytes : int;  (** bytes consumed as valid *)
  truncated : bool;  (** a torn or corrupt tail was discarded *)
  files : string list;
}

(** @raise Bincodec.Corrupt when [path] is not a segment file at all (bad
    magic) — truncated or corrupt {e tails} are recovered, not raised. *)
val read_file : string -> recovered

(** [read_files paths] concatenates a rotation sequence in list order.
    Corruption in any file ends the stream there (marked [truncated]). *)
val read_files : string list -> recovered

(** [read_prefix path] reads [path] itself when it exists, otherwise the
    sorted rotation set [path.00000], [path.00001], ... *)
val read_prefix : string -> recovered
