(** Compact binary codec for log events.

    The streaming pipeline's wire format, alongside the textual
    s-expression format of {!Vyrd.Repr.to_text}: framed records with
    varint-encoded integers and length-prefixed strings.  The original VYRD
    used .NET binary serialization for exactly this reason (§6.1) — logging
    must be cheap enough to leave on under heavy traffic, and the textual
    printer/parser dominates logging cost on hot paths.

    Encoding scheme:
    - unsigned integers: LEB128 varints (7 bits per byte, high bit =
      continuation);
    - signed integers: zigzag-mapped to unsigned first, so small negative
      values stay short;
    - strings: varint byte length, then raw bytes (no escaping);
    - values and events: one tag byte, then the fields in order.

    Decoding is total over arbitrary bytes: malformed input raises
    {!Corrupt}, never an out-of-bounds access. *)

exception Corrupt of string

(** {1 Varints} *)

(** [put_uvarint b n] appends the LEB128 encoding of [n] interpreted as an
    unsigned 63-bit integer. *)
val put_uvarint : Buffer.t -> int -> unit

(** [get_uvarint s pos] decodes one varint; returns the value and the first
    position after it.  @raise Corrupt on truncation or overlong input. *)
val get_uvarint : string -> int -> int * int

(** Zigzag-mapped signed varints — total over all of [int], including
    [min_int] and [max_int]. *)
val put_varint : Buffer.t -> int -> unit

val get_varint : string -> int -> int * int

(** {1 Strings} *)

(** [put_string b s] appends a varint byte length, then the raw bytes. *)
val put_string : Buffer.t -> string -> unit

val get_string : string -> int -> string * int

(** {1 Values and events} *)

val put_repr : Buffer.t -> Vyrd.Repr.t -> unit
val get_repr : string -> int -> Vyrd.Repr.t * int
val put_event : Buffer.t -> Vyrd.Event.t -> unit
val get_event : string -> int -> Vyrd.Event.t * int

(** [event_bytes ev] is the encoded size of [ev] (convenience for sizing). *)
val event_bytes : Vyrd.Event.t -> int

(** {1 Batch decoding}

    The hot-path entries: decode a run of consecutive events in one tight
    loop, without per-event closures or intermediate per-event strings. *)

(** [iter_events ?pos ?len s f] decodes consecutive events from the slice
    and hands each to [f]; returns how many were decoded.  The slice must
    end exactly at an event boundary.
    @raise Corrupt on malformed input or an event crossing the slice end.
    @raise Invalid_argument when the slice is out of bounds. *)
val iter_events : ?pos:int -> ?len:int -> string -> (Vyrd.Event.t -> unit) -> int

(** [get_events s ~pos ~count] decodes exactly [count] events starting at
    [pos]; returns them with the first position after the run.
    @raise Corrupt on malformed input. *)
val get_events : string -> pos:int -> count:int -> Vyrd.Event.t array * int

(** [iter_events_bytes buf ~pos ~len f] is {!iter_events} directly over a
    read buffer, {e zero-copy}: the bytes are aliased, not copied.  The
    caller must not mutate [buf] until the call returns (every event is
    materialized before then). *)
val iter_events_bytes : Bytes.t -> pos:int -> len:int -> (Vyrd.Event.t -> unit) -> int

(** {1 Checksums} *)

(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a substring; guards
    segment payloads against torn writes and bit rot. *)
val crc32 : ?pos:int -> ?len:int -> string -> int
