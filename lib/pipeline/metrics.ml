type counter = int Atomic.t
type gauge = int Atomic.t

type t = { lock : Mutex.t; entries : (string, entry) Hashtbl.t }

and entry = Counter of counter | Gauge of gauge | Histogram of histogram

and histogram = {
  buckets : int Atomic.t array;  (* bucket i counts values in [2^i, 2^(i+1)) *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
  owner : t;  (* registry the histogram lives in, for the clamp counter *)
  hname : string;
}

let create () = { lock = Mutex.create (); entries = Hashtbl.create 32 }

(* Exception-safe, like [Ring.locked]: a kind-mismatched registration
   raises [Invalid_argument] from inside [f], and the registry must stay
   usable for every other domain and session thread. *)
let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | r ->
    Mutex.unlock t.lock;
    r
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Counter c) -> c
      | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add t.entries name (Counter c);
        c)

let incr c = Atomic.incr c

let add c n = ignore (Atomic.fetch_and_add c n)

let value c = Atomic.get c

let gauge t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Gauge g) -> g
      | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
      | None ->
        let g = Atomic.make 0 in
        Hashtbl.add t.entries name (Gauge g);
        g)

let rec record g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then record g v

let gauge_value g = Atomic.get g

let n_buckets = 63

let histogram t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Histogram h) -> h
      | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
      | None ->
        let h =
          {
            buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_max = Atomic.make 0;
            owner = t;
            hname = name;
          }
        in
        Hashtbl.add t.entries name (Histogram h);
        h)

let bucket_of v =
  if v <= 1 then 0
  else
    let rec go i n = if n <= 1 || i = n_buckets - 1 then i else go (i + 1) (n lsr 1) in
    go 0 v

let observe h v =
  (* A negative observation is an instrumentation bug (clock regression,
     bad subtraction); clamping silently would hide it, so count clamps in
     a sibling counter — registered only on the first clamp, so registries
     that never misbehave are unchanged. *)
  if v < 0 then incr (counter h.owner (h.hname ^ ".clamped"));
  let v = max 0 v in
  Atomic.incr h.buckets.(bucket_of v);
  Atomic.incr h.h_count;
  ignore (Atomic.fetch_and_add h.h_sum v);
  record h.h_max v

let hist_count h = Atomic.get h.h_count
let hist_max h = Atomic.get h.h_max

let quantile h q =
  let total = Atomic.get h.h_count in
  if total = 0 then 0
  else begin
    let target = int_of_float (ceil (q *. float_of_int total)) in
    let target = max 1 (min total target) in
    let acc = ref 0 in
    let result = ref (Atomic.get h.h_max) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + Atomic.get h.buckets.(i);
         if !acc >= target then begin
           (* geometric midpoint of [2^i, 2^(i+1)) *)
           result := (if i = 0 then 1 else (1 lsl i) + (1 lsl (i - 1)));
           raise Exit
         end
       done
     with Exit -> ());
    min !result (Atomic.get h.h_max)
  end

(* --------------------------------------------------------------- merge *)

let merge ~into src =
  let entries =
    with_lock src (fun () ->
        Hashtbl.fold (fun name e acc -> (name, e) :: acc) src.entries [])
  in
  List.iter
    (fun (name, e) ->
      match e with
      | Counter c -> add (counter into name) (Atomic.get c)
      | Gauge g -> record (gauge into name) (Atomic.get g)
      | Histogram h ->
        let d = histogram into name in
        Array.iteri
          (fun i b -> ignore (Atomic.fetch_and_add d.buckets.(i) (Atomic.get b)))
          h.buckets;
        ignore (Atomic.fetch_and_add d.h_count (Atomic.get h.h_count));
        ignore (Atomic.fetch_and_add d.h_sum (Atomic.get h.h_sum));
        record d.h_max (Atomic.get h.h_max))
    entries

(* --------------------------------------------------------------- codec *)

(* [entry kind (1 byte) | name | values], entries sorted by name so equal
   registries encode identically.  Histogram buckets are sparse: most of the
   63 are empty on any real registry. *)

let encode t =
  let entries =
    with_lock t (fun () ->
        Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.entries [])
    |> List.sort compare
  in
  let b = Buffer.create 512 in
  Bincodec.put_uvarint b (List.length entries);
  List.iter
    (fun (name, e) ->
      match e with
      | Counter c ->
        Buffer.add_char b '\000';
        Bincodec.put_string b name;
        Bincodec.put_uvarint b (Atomic.get c)
      | Gauge g ->
        Buffer.add_char b '\001';
        Bincodec.put_string b name;
        Bincodec.put_uvarint b (Atomic.get g)
      | Histogram h ->
        Buffer.add_char b '\002';
        Bincodec.put_string b name;
        let filled = ref 0 in
        Array.iter (fun c -> if Atomic.get c > 0 then filled := !filled + 1) h.buckets;
        Bincodec.put_uvarint b !filled;
        Array.iteri
          (fun i c ->
            let v = Atomic.get c in
            if v > 0 then begin
              Bincodec.put_uvarint b i;
              Bincodec.put_uvarint b v
            end)
          h.buckets;
        Bincodec.put_uvarint b (Atomic.get h.h_count);
        Bincodec.put_uvarint b (Atomic.get h.h_sum);
        Bincodec.put_uvarint b (Atomic.get h.h_max))
    entries;
  Buffer.contents b

let decode s =
  let corrupt msg = raise (Bincodec.Corrupt ("metrics snapshot: " ^ msg)) in
  let t = create () in
  let n, pos = Bincodec.get_uvarint s 0 in
  let pos = ref pos in
  for _ = 1 to n do
    if !pos >= String.length s then corrupt "truncated entry";
    let kind = s.[!pos] in
    let name, p = Bincodec.get_string s (!pos + 1) in
    (match kind with
    | '\000' ->
      let v, p = Bincodec.get_uvarint s p in
      add (counter t name) v;
      pos := p
    | '\001' ->
      let v, p = Bincodec.get_uvarint s p in
      record (gauge t name) v;
      pos := p
    | '\002' ->
      let h = histogram t name in
      let filled, p = Bincodec.get_uvarint s p in
      let p = ref p in
      for _ = 1 to filled do
        let i, q = Bincodec.get_uvarint s !p in
        let v, q = Bincodec.get_uvarint s q in
        if i >= n_buckets then corrupt "histogram bucket out of range";
        ignore (Atomic.fetch_and_add h.buckets.(i) v);
        p := q
      done;
      let count, q = Bincodec.get_uvarint s !p in
      let sum, q = Bincodec.get_uvarint s q in
      let mx, q = Bincodec.get_uvarint s q in
      ignore (Atomic.fetch_and_add h.h_count count);
      ignore (Atomic.fetch_and_add h.h_sum sum);
      record h.h_max mx;
      pos := q
    | c -> corrupt (Printf.sprintf "unknown entry kind 0x%02x" (Char.code c)))
  done;
  if !pos <> String.length s then corrupt "trailing bytes";
  t

(* -------------------------------------------------------------- export *)

let sorted t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.entries [])
  |> List.sort compare

(* A [.clamped] sibling that never fired is noise in exports (it can appear
   at zero via [merge]/[decode] of a registry that had one); surface clamp
   counters only once they count something. *)
let hidden name = function
  | Counter c -> value c = 0 && String.ends_with ~suffix:".clamped" name
  | Gauge _ | Histogram _ -> false

let exported t = List.filter (fun (name, e) -> not (hidden name e)) (sorted t)

let pp ppf t =
  let entries = exported t in
  let counters = List.filter (function _, Counter _ -> true | _ -> false) entries in
  let gauges = List.filter (function _, Gauge _ -> true | _ -> false) entries in
  let hists = List.filter (function _, Histogram _ -> true | _ -> false) entries in
  let section title rows pr =
    if rows <> [] then begin
      Fmt.pf ppf "%s:@." title;
      List.iter (fun (name, e) -> pr name e) rows
    end
  in
  section "counters" counters (fun name e ->
      match e with
      | Counter c -> Fmt.pf ppf "  %-36s %12d@." name (value c)
      | _ -> ());
  section "gauges (high-water)" gauges (fun name e ->
      match e with
      | Gauge g -> Fmt.pf ppf "  %-36s %12d@." name (gauge_value g)
      | _ -> ());
  section "histograms" hists (fun name e ->
      match e with
      | Histogram h ->
        Fmt.pf ppf "  %-36s count %-9d p50 %-11d p99 %-11d max %d@." name
          (hist_count h) (quantile h 0.5) (quantile h 0.99) (hist_max h)
      | _ -> ())

(* OCaml's [String.escaped] emits [\ddd] decimal escapes — invalid JSON.
   Escape per RFC 8259: the two mandatory characters, the common C escapes,
   and [\u00XX] for every other byte outside printable ASCII (non-ASCII
   bytes included, which keeps the output parseable whatever encoding a
   metric name arrived in). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when c < ' ' || c > '~' ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  let entries = exported t in
  let emit kind pr =
    let rows = List.filter (fun (_, e) -> kind e) entries in
    List.iteri
      (fun i (name, e) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape name));
        pr e)
      rows
  in
  Buffer.add_string b "{\"counters\":{";
  emit
    (function Counter _ -> true | _ -> false)
    (function
      | Counter c -> Buffer.add_string b (string_of_int (value c))
      | _ -> ());
  Buffer.add_string b "},\"gauges\":{";
  emit
    (function Gauge _ -> true | _ -> false)
    (function
      | Gauge g -> Buffer.add_string b (string_of_int (gauge_value g))
      | _ -> ());
  Buffer.add_string b "},\"histograms\":{";
  emit
    (function Histogram _ -> true | _ -> false)
    (function
      | Histogram h ->
        Buffer.add_string b
          (Printf.sprintf "{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d}"
             (hist_count h) (Atomic.get h.h_sum) (hist_max h) (quantile h 0.5)
             (quantile h 0.9) (quantile h 0.99))
      | _ -> ());
  Buffer.add_string b "}}";
  Buffer.contents b
