open Vyrd

let magic = "VYRDB1"

let level_code = function `None -> 0 | `Io -> 1 | `View -> 2 | `Full -> 3

let level_of_code = function
  | 0 -> Some `None
  | 1 -> Some `Io
  | 2 -> Some `View
  | 3 -> Some `Full
  | _ -> None

let frame_header_bytes = 12
let file_header_bytes = String.length magic + 1

(* Checkpoint frames reuse the event framing but set bit 31 of the count
   word (an event segment never holds 2^31 events).  Readers that predate
   checkpoints treat such a frame like any other: its CRC still guards the
   clean-prefix recovery; readers from this version on skip the payload
   unless asked to collect it. *)
let checkpoint_flag = 0x80000000

(* --------------------------------------------------------------- writer *)

type writer = {
  w_segment_bytes : int;
  w_rotate : int option;
  w_level : Log.level;
  w_path : string;
  w_buf : Buffer.t;
  mutable w_buf_events : int;
  mutable w_oc : out_channel option;
  mutable w_file_index : int;
  mutable w_file_bytes : int;
  mutable w_files : string list;  (* reverse stream order *)
  mutable w_bytes : int;
  mutable w_segments : int;
  mutable w_events : int;
  mutable w_checkpoints : int;
  mutable w_closed : bool;
}

let create_writer ?(segment_bytes = 65536) ?rotate_bytes ~level path =
  if segment_bytes <= 0 then invalid_arg "Segment.create_writer: segment_bytes";
  (match rotate_bytes with
  | Some n when n <= 0 -> invalid_arg "Segment.create_writer: rotate_bytes"
  | _ -> ());
  {
    w_segment_bytes = segment_bytes;
    w_rotate = rotate_bytes;
    w_level = level;
    w_path = path;
    w_buf = Buffer.create (segment_bytes + 256);
    w_buf_events = 0;
    w_oc = None;
    w_file_index = 0;
    w_file_bytes = 0;
    w_files = [];
    w_bytes = 0;
    w_segments = 0;
    w_events = 0;
    w_checkpoints = 0;
    w_closed = false;
  }

let current_path w =
  match w.w_rotate with
  | None -> w.w_path
  | Some _ -> Printf.sprintf "%s.%05d" w.w_path w.w_file_index

let ensure_open w =
  match w.w_oc with
  | Some oc -> oc
  | None ->
    let path = current_path w in
    let oc = open_out_bin path in
    output_string oc magic;
    output_char oc (Char.chr (level_code w.w_level));
    w.w_oc <- Some oc;
    w.w_file_bytes <- file_header_bytes;
    w.w_bytes <- w.w_bytes + file_header_bytes;
    w.w_files <- path :: w.w_files;
    oc

let close_current_file w =
  match w.w_oc with
  | None -> ()
  | Some oc ->
    close_out oc;
    w.w_oc <- None;
    w.w_file_index <- w.w_file_index + 1

let put_u32 bytes off n =
  Bytes.set_int32_le bytes off (Int32.of_int (n land 0xffffffff))

let frame_bytes payload count =
  let head = Bytes.create frame_header_bytes in
  put_u32 head 0 (String.length payload);
  put_u32 head 4 (Bincodec.crc32 payload);
  put_u32 head 8 count;
  head

let write_frame w payload count =
  let oc = ensure_open w in
  output_bytes oc (frame_bytes payload count);
  output_string oc payload;
  flush oc;
  let n = frame_header_bytes + String.length payload in
  w.w_file_bytes <- w.w_file_bytes + n;
  w.w_bytes <- w.w_bytes + n;
  match w.w_rotate with
  | Some limit when w.w_file_bytes >= limit -> close_current_file w
  | _ -> ()

let seal w =
  if w.w_buf_events > 0 then begin
    let payload = Buffer.contents w.w_buf in
    let count = w.w_buf_events in
    Buffer.clear w.w_buf;
    w.w_buf_events <- 0;
    w.w_segments <- w.w_segments + 1;
    write_frame w payload count
  end

let checkpoint_payload ~events state =
  let b = Buffer.create 256 in
  Bincodec.put_uvarint b events;
  Bincodec.put_repr b state;
  Buffer.contents b

let append_checkpoint w state =
  if w.w_closed then invalid_arg "Segment.append_checkpoint: writer is closed";
  (* seal first: the frame's event index covers everything appended so far *)
  seal w;
  w.w_checkpoints <- w.w_checkpoints + 1;
  write_frame w (checkpoint_payload ~events:w.w_events state) checkpoint_flag

let append w ev =
  if w.w_closed then invalid_arg "Segment.append: writer is closed";
  Bincodec.put_event w.w_buf ev;
  w.w_buf_events <- w.w_buf_events + 1;
  w.w_events <- w.w_events + 1;
  if Buffer.length w.w_buf >= w.w_segment_bytes then seal w

let flush w =
  if not w.w_closed then seal w

let close w =
  if not w.w_closed then begin
    w.w_closed <- true;
    (* the channel must not outlive the writer even when the final seal
       fails (disk full, quota) *)
    Fun.protect
      ~finally:(fun () -> close_current_file w)
      (fun () ->
        (* even an event-free stream leaves a (headered) file behind *)
        if w.w_files = [] then ignore (ensure_open w);
        seal w)
  end

let attach w log = Log.subscribe log (append w)
let writer_files w = List.rev w.w_files
let writer_bytes w = w.w_bytes
let writer_segments w = w.w_segments
let writer_events w = w.w_events
let writer_checkpoints w = w.w_checkpoints

let write_file ?segment_bytes path log =
  let w = create_writer ?segment_bytes ~level:(Log.level log) path in
  Fun.protect
    ~finally:(fun () -> close w)
    (fun () -> Log.iter (append w) log)

(* --------------------------------------------------------------- reader *)

type recovered = {
  log : Log.t;
  segments : int;
  bytes : int;
  truncated : bool;
  files : string list;
}

let is_binary path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match really_input_string ic (String.length magic) with
        | s -> String.equal s magic
        | exception End_of_file -> false)

let get_u32 s off =
  Int32.to_int (String.get_int32_le s off) land 0xffffffff

(* Decode one CRC-validated payload into the log.  The payload passed its
   checksum, so a decode failure here means an encoder bug, not a torn
   write: raise rather than silently truncate. *)
let decode_payload log payload count =
  let n = ref (Bincodec.iter_events payload (Log.append log)) in
  if !n <> count then
    raise
      (Bincodec.Corrupt
         (Printf.sprintf "segment declared %d events but contained %d" count !n))

let decode_checkpoint payload =
  let events, pos = Bincodec.get_uvarint payload 0 in
  let state, pos = Bincodec.get_repr payload pos in
  if pos <> String.length payload then
    raise (Bincodec.Corrupt "checkpoint frame has trailing bytes");
  (events, state)

(* Read every whole, CRC-valid segment of [ic]; [false] when a torn payload
   or a checksum mismatch ended the stream (a torn 12-byte frame header
   shows up as a clean [End_of_file] here and is caught by the caller's
   consumed-bytes-vs-file-size comparison).  Checkpoint frames never reach
   the event log: they are handed to [on_checkpoint] when they decode, and
   skipped otherwise (a CRC-valid but undecodable checkpoint is version
   skew, not a torn tail — losing it costs replay work, never events). *)
let read_segments ?(on_checkpoint = fun _ _ -> ()) log ic acc_segments acc_bytes =
  let clean = ref true in
  let stop = ref false in
  while not !stop do
    match really_input_string ic frame_header_bytes with
    | exception End_of_file -> stop := true
    | head ->
      let len = get_u32 head 0 in
      let crc = get_u32 head 4 in
      let count = get_u32 head 8 in
      (match really_input_string ic len with
      | exception End_of_file ->
        clean := false;
        stop := true
      | payload ->
        if Bincodec.crc32 payload <> crc then begin
          clean := false;
          stop := true
        end
        else begin
          if count land checkpoint_flag <> 0 then (
            match decode_checkpoint payload with
            | events, state -> on_checkpoint events state
            | exception Bincodec.Corrupt _ -> ())
          else begin
            decode_payload log payload count;
            incr acc_segments
          end;
          acc_bytes := !acc_bytes + frame_header_bytes + len
        end)
  done;
  !clean

let read_header ic =
  match really_input_string ic file_header_bytes with
  | exception End_of_file -> Error `Torn_header
  | s ->
    if not (String.equal (String.sub s 0 (String.length magic)) magic) then
      Error `Bad_magic
    else (
      match level_of_code (Char.code s.[String.length magic]) with
      | Some lvl -> Ok lvl
      | None -> Error `Bad_magic)

let read_files_collecting ?on_checkpoint paths =
  let log = ref None in
  let segments = ref 0 in
  let bytes = ref 0 in
  let truncated = ref false in
  let read_one path =
    let size = (Unix.stat path).Unix.st_size in
    let before = !bytes in
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match read_header ic with
        | Error `Bad_magic when !log = None ->
          raise (Bincodec.Corrupt (path ^ ": not a vyrd binary segment file"))
        | Error (`Bad_magic | `Torn_header) ->
          (* a crash can truncate even the header of the last rotated file *)
          truncated := true
        | Ok lvl ->
          let l =
            match !log with
            | Some l -> l
            | None ->
              let l = Log.create ~level:lvl () in
              log := Some l;
              l
          in
          bytes := !bytes + file_header_bytes;
          let on_checkpoint =
            Option.map (fun f events state -> f l events state) on_checkpoint
          in
          if not (read_segments ?on_checkpoint l ic segments bytes) then
            truncated := true;
          (* bytes we validated falling short of the file size means the
             tail was torn inside a frame header *)
          if !bytes - before < size then truncated := true)
  in
  List.iter (fun path -> if not !truncated then read_one path) paths;
  let log = match !log with Some l -> l | None -> Log.create ~level:`Full () in
  {
    log;
    segments = !segments;
    bytes = !bytes;
    truncated = !truncated;
    files = paths;
  }

let read_files paths = read_files_collecting paths
let read_file path = read_files [ path ]

(* [path] itself when it exists, otherwise the sorted rotation set. *)
let resolve_prefix path =
  if Sys.file_exists path then [ path ]
  else begin
    let dir = Filename.dirname path in
    let base = Filename.basename path ^ "." in
    let entries =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> String.starts_with ~prefix:base f)
      |> List.sort compare
      |> List.map (Filename.concat dir)
    in
    if entries = [] then
      raise (Bincodec.Corrupt (path ^ ": no such segment file or rotation set"));
    entries
  end

let read_prefix path = read_files (resolve_prefix path)

(* ---------------------------------------------------------- checkpoints *)

type checkpoint = { ck_events : int; ck_state : Vyrd.Repr.t }

type resumable = { r_recovered : recovered; r_checkpoints : checkpoint list }

let read_from_checkpoint path =
  let cks = ref [] in
  let on_checkpoint log events state =
    (* a checkpoint cannot cover more events than precede it in the
       stream; anything else is a forged or misplaced frame — drop it *)
    if events >= 0 && events <= Log.length log then
      cks := { ck_events = events; ck_state = state } :: !cks
  in
  let r = read_files_collecting ~on_checkpoint (resolve_prefix path) in
  { r_recovered = r; r_checkpoints = List.rev !cks }

let latest_checkpoint ?at resumable =
  let limit =
    match at with Some n -> n | None -> Log.length resumable.r_recovered.log
  in
  List.fold_left
    (fun acc ck -> if ck.ck_events <= limit then Some ck else acc)
    None resumable.r_checkpoints

let append_checkpoint_file path ~events state =
  let target =
    match List.rev (resolve_prefix path) with
    | last :: _ -> last
    | [] -> raise (Bincodec.Corrupt (path ^ ": no such segment file or rotation set"))
  in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 target in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let payload = checkpoint_payload ~events state in
      output_bytes oc (frame_bytes payload checkpoint_flag);
      output_string oc payload)
