(** Pipeline metrics: counters, high-water gauges and log2 histograms.

    One registry is shared by the log, the segment writer and every checker
    domain of a {!Farm}, so handles must be cheap from any domain: each is a
    single [Atomic.t] (or an array of them), registered once under a mutex
    and then updated lock-free on the hot path.

    Export is deterministic (names sorted) as either an aligned text table
    ({!pp}) or a single JSON document ({!to_json}) — the payload the
    [vyrd-check pipeline --metrics-json] flag and the CI artifact carry. *)

type t

val create : unit -> t

(** {1 Counters} — monotonically increasing totals (events logged, checked,
    dropped, commits, violations, stall nanoseconds). *)

type counter

(** [counter t name] registers (or retrieves) the counter called [name]. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} — maximum-tracking levels (queue-depth high-water marks). *)

type gauge

val gauge : t -> string -> gauge

(** [record g v] raises the gauge to [v] if higher. *)
val record : gauge -> int -> unit

val gauge_value : gauge -> int

(** {1 Histograms} — power-of-two buckets over nonnegative integers
    (latencies in nanoseconds, batch sizes). *)

type histogram

val histogram : t -> string -> histogram

(** [observe h v] records [v].  Negative values are clamped to [0] {e and
    counted}: the first clamp registers a sibling counter named
    [<name>.clamped] in the histogram's registry (so registries that never
    clamp are unchanged), and {!pp}/{!to_json} surface it only when
    nonzero — a nonzero clamp count means an instrumentation bug upstream
    (e.g. a clock regression). *)
val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_max : histogram -> int

(** [quantile h q] estimates the [q]-quantile (0 <= q <= 1) as the
    geometric midpoint of the bucket where the cumulative count crosses;
    [0] when empty. *)
val quantile : histogram -> float -> int

(** {1 Merging and snapshots}

    A cluster coordinator aggregates the registries of many workers into one
    view; these are the primitives of that scrape path. *)

(** [merge ~into src] folds every entry of [src] into [into]: counters add,
    gauges keep the maximum, histograms add bucket-wise (count and sum add,
    max keeps the maximum).  Entries missing from [into] are registered.
    Merging disjoint or overlapping registries is commutative and
    associative up to export equality.
    @raise Invalid_argument when a name is registered with one kind in
      [src] and another in [into]. *)
val merge : into:t -> t -> unit

(** [encode t] is a compact binary snapshot of the registry (sorted, so
    equal registries encode identically) — the payload a worker's status
    reply carries. *)
val encode : t -> string

(** [decode s] rebuilds a registry from {!encode} output.
    @raise Bincodec.Corrupt on malformed input. *)
val decode : string -> t

(** {1 Export} *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string

(** RFC 8259 string escaping used for every key {!to_json} emits: quote,
    backslash and all bytes outside printable ASCII become JSON escapes
    (control characters and non-ASCII bytes as [\u00XX]) — unlike OCaml's
    [String.escaped], whose [\ddd] forms no JSON parser accepts. *)
val json_escape : string -> string
