open Vyrd

type outcome = {
  report : Report.t;
  fail_index : int option;
  total : int;
  replayed : int;
  resumed_at : int option;
  truncated : bool;
  checkpoints : int;
}

let require_every every who = if every <= 0 then invalid_arg (who ^ ": every")

(* ------------------------------------------------- checkpoint producers *)

let check_to_spool ?mode ?view ?invariants ?segment_bytes ?rotate_bytes ~every
    ~path log spec =
  require_every every "Resume.check_to_spool";
  (match mode with
  | Some `View -> Checker.require_view_level ~who:"Resume.check_to_spool" log
  | _ -> ());
  let t = Checker.create ?mode ?view ?invariants spec in
  let w = Segment.create_writer ?segment_bytes ?rotate_bytes ~level:(Log.level log) path in
  let fail = ref None in
  let count = ref 0 in
  Fun.protect
    ~finally:(fun () -> Segment.close w)
    (fun () ->
      Log.iter
        (fun ev ->
          let idx = !count in
          incr count;
          Segment.append w ev;
          (match Checker.feed t ev with
          | Some _ when !fail = None -> fail := Some idx
          | _ -> ());
          if !count mod every = 0 then
            match Checker.snapshot t with
            | Some st -> Segment.append_checkpoint w st
            | None -> ())
        log);
  {
    report = Checker.report t;
    fail_index = !fail;
    total = !count;
    replayed = !count;
    resumed_at = None;
    truncated = false;
    checkpoints = Segment.writer_checkpoints w;
  }

let annotate ?mode ?view ?invariants ~every ~path spec =
  require_every every "Resume.annotate";
  let r = Segment.read_prefix path in
  let log = r.Segment.log in
  (match mode with
  | Some `View -> Checker.require_view_level ~who:"Resume.annotate" log
  | _ -> ());
  let t = Checker.create ?mode ?view ?invariants spec in
  let fail = ref None in
  let count = ref 0 in
  let checkpoints = ref 0 in
  (* appending after a torn tail would bury the frames behind the
     corruption the reader stops at, so a truncated spool is only checked,
     not annotated *)
  let can_annotate = not r.Segment.truncated in
  Log.iter
    (fun ev ->
      let idx = !count in
      incr count;
      (match Checker.feed t ev with
      | Some _ when !fail = None -> fail := Some idx
      | _ -> ());
      if can_annotate && !count mod every = 0 then
        match Checker.snapshot t with
        | Some st ->
          Segment.append_checkpoint_file path ~events:!count st;
          incr checkpoints
        | None -> ())
    log;
  {
    report = Checker.report t;
    fail_index = !fail;
    total = !count;
    replayed = !count;
    resumed_at = None;
    truncated = r.Segment.truncated;
    checkpoints = !checkpoints;
  }

(* --------------------------------------------------------------- resume *)

let resume_recovered ?mode ?view ?invariants ?at (rz : Segment.resumable) spec =
  let log = rz.Segment.r_recovered.Segment.log in
  (match mode with
  | Some `View -> Checker.require_view_level ~who:"Resume.resume" log
  | _ -> ());
  let events = Log.snapshot log in
  let total = Array.length events in
  let limit = match at with Some n -> min n total | None -> total in
  let run ~from ~resumed_at restore_state =
    let t = Checker.create ?mode ?view ?invariants spec in
    Option.iter (Checker.restore t) restore_state;
    let fail = ref None in
    for i = from to total - 1 do
      match Checker.feed t events.(i) with
      | Some _ when !fail = None -> fail := Some i
      | _ -> ()
    done;
    {
      report = Checker.report t;
      fail_index = !fail;
      total;
      replayed = total - from;
      resumed_at;
      truncated = rz.Segment.r_recovered.Segment.truncated;
      checkpoints = List.length rz.Segment.r_checkpoints;
    }
  in
  (* newest usable checkpoint first; a checkpoint that fails to restore
     falls back to the next older one, then to a full replay — the verdict
     can only cost replay work, never change *)
  let candidates =
    List.filter (fun c -> c.Segment.ck_events <= limit) rz.Segment.r_checkpoints
    |> List.rev
  in
  let rec attempt = function
    | [] -> run ~from:0 ~resumed_at:None None
    | (ck : Segment.checkpoint) :: rest -> (
      match
        run ~from:ck.Segment.ck_events ~resumed_at:(Some ck.Segment.ck_events)
          (Some ck.Segment.ck_state)
      with
      | outcome -> outcome
      | exception (Ckpt.Malformed _ | Invalid_argument _) -> attempt rest)
  in
  attempt candidates

let resume ?mode ?view ?invariants ?at ~path spec =
  resume_recovered ?mode ?view ?invariants ?at (Segment.read_from_checkpoint path) spec

(* ---------------------------------------------------------- farm resume *)

type resumed_farm = {
  rf_farm : Farm.t;
  rf_total : int;
  rf_replayed : int;
  rf_resumed_at : int option;
  rf_truncated : bool;
  rf_checkpoints : int;
}

(* Same fallback chain as [resume_farm], but the farm is handed back live —
   the suffix has been fed and nothing finished — so a worker adopting a
   half-streamed session can keep feeding it events from the wire.  A
   checkpoint that restores at [Farm.start] but then breaks mid-feed still
   falls back: the partial farm is finished (reaping its domains) before the
   next candidate is tried. *)
let resume_farm_open ?capacity ?metrics ?passes ?at ~shards ~path () =
  let rz = Segment.read_from_checkpoint path in
  let log = rz.Segment.r_recovered.Segment.log in
  let level = Log.level log in
  let shards = shards level in
  let events = Log.snapshot log in
  let total = Array.length events in
  let limit = match at with Some n -> min n total | None -> total in
  let truncated = rz.Segment.r_recovered.Segment.truncated in
  let run ~from ~resumed_at restore_state =
    let farm =
      Farm.start ?capacity ?metrics ?passes ?restore:restore_state ~level shards
    in
    (try
       for i = from to total - 1 do
         Farm.feed farm events.(i)
       done
     with e ->
       ignore (Farm.finish farm : Farm.result);
       raise e);
    {
      rf_farm = farm;
      rf_total = total;
      rf_replayed = total - from;
      rf_resumed_at = resumed_at;
      rf_truncated = truncated;
      rf_checkpoints = List.length rz.Segment.r_checkpoints;
    }
  in
  let candidates =
    List.filter (fun c -> c.Segment.ck_events <= limit) rz.Segment.r_checkpoints
    |> List.rev
  in
  let rec attempt = function
    | [] -> run ~from:0 ~resumed_at:None None
    | (ck : Segment.checkpoint) :: rest -> (
      match
        run ~from:ck.Segment.ck_events ~resumed_at:(Some ck.Segment.ck_events)
          (Some ck.Segment.ck_state)
      with
      | outcome -> outcome
      | exception (Ckpt.Malformed _ | Invalid_argument _) -> attempt rest)
  in
  attempt candidates

let resume_farm ?capacity ?metrics ?at ?annotate_every ~shards ~path () =
  (match annotate_every with
  | Some n when n <= 0 -> invalid_arg "Resume.resume_farm: annotate_every"
  | _ -> ());
  let rz = Segment.read_from_checkpoint path in
  let log = rz.Segment.r_recovered.Segment.log in
  let level = Log.level log in
  let shards = shards level in
  let events = Log.snapshot log in
  let total = Array.length events in
  let limit = match at with Some n -> min n total | None -> total in
  let truncated = rz.Segment.r_recovered.Segment.truncated in
  let can_annotate = annotate_every <> None && not truncated in
  let run ~from ~resumed_at restore_state =
    let farm = Farm.start ?capacity ?metrics ?restore:restore_state ~level shards in
    let annotations = ref [] in
    let next_annotation =
      ref
        (match annotate_every with
        | Some n -> from + n
        | None -> max_int)
    in
    for i = from to total - 1 do
      Farm.feed farm events.(i);
      if i + 1 >= !next_annotation then begin
        (match Farm.checkpoint farm with
        | Some st -> annotations := (i + 1, st) :: !annotations
        | None -> ());
        next_annotation :=
          !next_annotation + Option.value ~default:max_int annotate_every
      end
    done;
    (* a final checkpoint covering the whole spool makes the next re-check
       O(1) in replay work; must be taken before [finish] closes the lanes *)
    if can_annotate && total > from then
      (match Farm.checkpoint farm with
      | Some st when (match !annotations with (n, _) :: _ -> n < total | [] -> true)
        ->
        annotations := (total, st) :: !annotations
      | _ -> ());
    let result = Farm.finish farm in
    if can_annotate then
      List.iter
        (fun (n, st) -> Segment.append_checkpoint_file path ~events:n st)
        (List.rev !annotations);
    {
      report = result.Farm.merged;
      fail_index = Farm.min_fail_index result;
      total;
      replayed = total - from;
      resumed_at;
      truncated;
      checkpoints = List.length rz.Segment.r_checkpoints;
    }
  in
  let candidates =
    List.filter (fun c -> c.Segment.ck_events <= limit) rz.Segment.r_checkpoints
    |> List.rev
  in
  let rec attempt = function
    | [] -> run ~from:0 ~resumed_at:None None
    | (ck : Segment.checkpoint) :: rest -> (
      match
        run ~from:ck.Segment.ck_events ~resumed_at:(Some ck.Segment.ck_events)
          (Some ck.Segment.ck_state)
      with
      | outcome -> outcome
      | exception (Ckpt.Malformed _ | Invalid_argument _) -> attempt rest)
  in
  attempt candidates
