(** The checker farm: one verification domain per data structure.

    {!Vyrd.Online} runs a single checker domain fed by one queue; the farm
    generalizes it into the streaming pipeline the north star calls for:
    the tagged event stream of a shared log is {e sharded} across one
    checker domain per structure — the routing mirror of
    {!Vyrd.Spec_compose}, which folds several structures into one product
    specification.  Method events are routed to the component whose
    specification knows the method name (namespaces must be disjoint, the
    {!Vyrd.Spec_compose} precondition); commit and commit-block events
    follow the thread's open call; shared-variable writes outside any call
    (structure initialization) are broadcast so every shard's shadow replay
    sees them; reads and lock events are consumed by no refinement checker
    and are skipped at the router.

    Each shard is fed through a bounded {!Vyrd.Ring}: a producer that
    outruns a shard blocks at the log append until that shard catches up,
    so memory stays bounded under any load (blocking backpressure).

    {!finish} implements the drain protocol: close every ring, join every
    domain, and merge the per-shard reports {e deterministically} — the
    merged outcome is the violation whose triggering event has the lowest
    global log index, ties broken by shard order, independent of domain
    scheduling. *)

type shard = {
  sh_name : string;
  sh_spec : Vyrd.Spec.t;
  sh_mode : Vyrd.Checker.mode;
  sh_view : Vyrd.View.t option;
  sh_invariants : Vyrd.Checker.invariant list;
}

(** [shard name spec] with I/O mode defaults. *)
val shard :
  ?mode:Vyrd.Checker.mode ->
  ?view:Vyrd.View.t ->
  ?invariants:Vyrd.Checker.invariant list ->
  string ->
  Vyrd.Spec.t ->
  shard

type t

(** [start ~level shards] spawns one checker domain per shard.
    @param capacity per-shard ring bound (default 4096).
    @param metrics registry fed by the router and the checker domains.
    @param level the level of the log about to be streamed — [`View]-mode
      shards reject sub-[`View] levels up front, like {!Vyrd.Checker.check}.
    @param restore a farm checkpoint produced by {!checkpoint} with the
      {e same} shard list: the router's event cursor and thread routing and
      every lane's checker state resume where the checkpoint was taken, so
      only the event suffix needs to be fed.  Lane checkers are restored in
      the calling thread, before any domain spawns.
    @raise Invalid_argument on an empty shard list, a [`View] shard without
      a view, or a [`View] shard with a sub-[`View] level.
    @param passes incremental {!Vyrd_analysis.Pass} instances to run
      in-service on a dedicated analysis lane (own ring + domain).  Unlike
      the refinement lanes — whose router skips read and lock events — the
      analysis lane sees the {e whole} stream in feed order.  The lane takes
      no part in {!checkpoint}: after a restore the passes see only the
      resumed suffix, so their diagnostics are advisory on resumed runs.
      Pass summaries come back in {!result} and feed the [analysis.*]
      metrics family.
    @raise Vyrd.Ckpt.Malformed when [restore] is not a farm checkpoint for
      this shard list (wrong tag, lane names, counts, or lane payloads) —
      no domains have been spawned when it raises, so the caller can fall
      back to an older checkpoint or a plain {!start}. *)
val start :
  ?capacity:int ->
  ?metrics:Metrics.t ->
  ?restore:Vyrd.Repr.t ->
  ?passes:Vyrd_analysis.Pass.t list ->
  level:Vyrd.Log.level ->
  shard list ->
  t

(** [checkpoint t] pushes a barrier token down every lane and collects the
    lane snapshots it answers with: the result covers exactly the
    [events_fed t] events routed so far.  [None] when any lane cannot
    snapshot (its checker found a violation, or its specification does not
    checkpoint) or the farm is already finished.  Call from the feeding
    thread (or a log listener), like {!feed}. *)
val checkpoint : t -> Vyrd.Repr.t option

(** [feed t ev] routes one event.  Single producer: call from one thread, or
    from a {!Vyrd.Log} listener (the log lock already serializes those).

    Routed events accumulate in a small per-lane pending slice and enter the
    lane ring through one {!Vyrd.Ring.push_batch} per slice, so the per-event
    mutex handshake of the unbatched design is amortized away.  The slices
    are flushed automatically by {!checkpoint} and {!finish} (and by
    {!flush}); they only ever hold a bounded tail of the stream. *)
val feed : t -> Vyrd.Event.t -> unit

(** [feed_batch t evs] routes a whole array, in order — equivalent to
    [Array.iter (feed t) evs], the entry point the network server uses so a
    wire batch flows to the lane rings in slices end-to-end. *)
val feed_batch : t -> Vyrd.Event.t array -> unit

(** [flush t] pushes every lane's pending slice into its ring.  Only needed
    when the feeder wants previously routed events to become visible to the
    checker domains {e now} (e.g. before polling for an early verdict) —
    {!checkpoint} and {!finish} flush on their own. *)
val flush : t -> unit

(** [attach t log] subscribes {!feed} to every subsequently appended
    event. *)
val attach : t -> Vyrd.Log.t -> unit

(** Events routed so far. *)
val events_fed : t -> int

type shard_result = {
  sr_name : string;
  sr_report : Vyrd.Report.t;
  sr_fail_index : int option;
      (** global log index of the event that triggered the violation *)
  sr_high_water : int;
  sr_stall_ns : int;
  sr_events : int;  (** events this shard consumed *)
}

type result = {
  merged : Vyrd.Report.t;
      (** deterministic merge: earliest violation by global event index;
          stats are the per-shard sums, [queue_high_water] the maximum *)
  shards : shard_result list;
  fed : int;
  analysis : Vyrd_analysis.Pass.summary list;
      (** one summary per attached pass; [[]] when none were attached *)
}

(** Close every ring, join every domain, merge.  Idempotent. *)
val finish : t -> result

(** Lowest global fail index across the shards, when any failed. *)
val min_fail_index : result -> int option
