open Vyrd

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------- varints *)

(* LEB128 over the 63-bit native int, treated as unsigned: [lsr] keeps the
   loop total even when the top (sign) bit is set by the zigzag mapping. *)
let put_uvarint b n =
  let rec go n =
    if n lsr 7 = 0 then Buffer.add_char b (Char.unsafe_chr (n land 0x7f))
    else begin
      Buffer.add_char b (Char.unsafe_chr (n land 0x7f lor 0x80));
      go (n lsr 7)
    end
  in
  go n

let get_uvarint s pos =
  let len = String.length s in
  let rec go acc shift pos =
    if pos >= len then corrupt "truncated varint";
    if shift > 56 then corrupt "varint longer than 9 bytes";
    let c = Char.code (String.unsafe_get s pos) in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

(* Zigzag: 0,-1,1,-2,... -> 0,1,2,3,...; [asr 62] spreads the sign bit of
   the 63-bit int. *)
let put_varint b n = put_uvarint b ((n lsl 1) lxor (n asr 62))

let get_varint s pos =
  let u, pos = get_uvarint s pos in
  ((u lsr 1) lxor (- (u land 1)), pos)

let put_string b s =
  put_uvarint b (String.length s);
  Buffer.add_string b s

(* [pos + n] can overflow to negative when a hostile 9-byte uvarint decodes
   near max_int, so bound [n] by the remaining bytes instead. *)
let get_string s pos =
  let n, pos = get_uvarint s pos in
  if n < 0 || n > String.length s - pos then corrupt "truncated string (%d bytes)" n;
  (String.sub s pos n, pos + n)

(* Method, variable and lock names repeat millions of times per log, so the
   name positions of {!get_event} resolve through a direct-mapped cache of
   previously decoded strings instead of allocating a fresh copy each time.
   Collisions and stale entries just fall back to [String.sub]; the cached
   values are immutable, so cross-domain races are benign. *)
let intern_size = 4096
let intern : string array = Array.make intern_size ""

let hash_sub s pos n =
  let h = ref n in
  for i = pos to pos + n - 1 do
    h := (!h * 31) + Char.code (String.unsafe_get s i)
  done;
  !h land (intern_size - 1)

let equal_sub s pos n t =
  String.length t = n
  &&
  let rec go i =
    i = n || (String.unsafe_get t i = String.unsafe_get s (pos + i) && go (i + 1))
  in
  go 0

let get_name s pos =
  let n, pos = get_uvarint s pos in
  if n < 0 || n > String.length s - pos then corrupt "truncated string (%d bytes)" n;
  if n > 32 then (String.sub s pos n, pos + n)
  else begin
    let h = hash_sub s pos n in
    let t = Array.unsafe_get intern h in
    if equal_sub s pos n t then (t, pos + n)
    else begin
      let t = String.sub s pos n in
      Array.unsafe_set intern h t;
      (t, pos + n)
    end
  end

(* -------------------------------------------------------------- values *)

let rec put_repr b = function
  | Repr.Unit -> Buffer.add_char b '\000'
  | Repr.Bool false -> Buffer.add_char b '\001'
  | Repr.Bool true -> Buffer.add_char b '\002'
  | Repr.Int n ->
    Buffer.add_char b '\003';
    put_varint b n
  | Repr.Str s ->
    Buffer.add_char b '\004';
    put_string b s
  | Repr.Pair (x, y) ->
    Buffer.add_char b '\005';
    put_repr b x;
    put_repr b y
  | Repr.List vs ->
    Buffer.add_char b '\006';
    put_uvarint b (List.length vs);
    List.iter (put_repr b) vs

let rec get_repr s pos =
  if pos >= String.length s then corrupt "truncated value";
  match s.[pos] with
  | '\000' -> (Repr.Unit, pos + 1)
  | '\001' -> (Repr.Bool false, pos + 1)
  | '\002' -> (Repr.Bool true, pos + 1)
  | '\003' ->
    let n, pos = get_varint s (pos + 1) in
    (Repr.Int n, pos)
  | '\004' ->
    let v, pos = get_string s (pos + 1) in
    (Repr.Str v, pos)
  | '\005' ->
    let x, pos = get_repr s (pos + 1) in
    let y, pos = get_repr s pos in
    (Repr.Pair (x, y), pos)
  | '\006' ->
    let n, pos = get_uvarint s (pos + 1) in
    let rec items acc n pos =
      if n = 0 then (List.rev acc, pos)
      else
        let v, pos = get_repr s pos in
        items (v :: acc) (n - 1) pos
    in
    let vs, pos = items [] n pos in
    (Repr.List vs, pos)
  | c -> corrupt "unknown value tag 0x%02x" (Char.code c)

(* -------------------------------------------------------------- events *)

let put_event b ev =
  let tagged tag tid =
    Buffer.add_char b tag;
    put_uvarint b tid
  in
  match ev with
  | Event.Call { tid; mid; args } ->
    tagged '\000' tid;
    put_string b mid;
    put_uvarint b (List.length args);
    List.iter (put_repr b) args
  | Event.Return { tid; mid; value } ->
    tagged '\001' tid;
    put_string b mid;
    put_repr b value
  | Event.Commit { tid } -> tagged '\002' tid
  | Event.Write { tid; var; value } ->
    tagged '\003' tid;
    put_string b var;
    put_repr b value
  | Event.Block_begin { tid } -> tagged '\004' tid
  | Event.Block_end { tid } -> tagged '\005' tid
  | Event.Read { tid; var } ->
    tagged '\006' tid;
    put_string b var
  | Event.Acquire { tid; lock } ->
    tagged '\007' tid;
    put_string b lock
  | Event.Release { tid; lock } ->
    tagged '\008' tid;
    put_string b lock

let get_event s pos =
  if pos >= String.length s then corrupt "truncated event";
  let tag = s.[pos] in
  let tid, pos = get_uvarint s (pos + 1) in
  match tag with
  | '\000' ->
    let mid, pos = get_name s pos in
    let n, pos = get_uvarint s pos in
    let rec items acc n pos =
      if n = 0 then (List.rev acc, pos)
      else
        let v, pos = get_repr s pos in
        items (v :: acc) (n - 1) pos
    in
    let args, pos = items [] n pos in
    (Event.Call { tid; mid; args }, pos)
  | '\001' ->
    let mid, pos = get_name s pos in
    let value, pos = get_repr s pos in
    (Event.Return { tid; mid; value }, pos)
  | '\002' -> (Event.Commit { tid }, pos)
  | '\003' ->
    let var, pos = get_name s pos in
    let value, pos = get_repr s pos in
    (Event.Write { tid; var; value }, pos)
  | '\004' -> (Event.Block_begin { tid }, pos)
  | '\005' -> (Event.Block_end { tid }, pos)
  | '\006' ->
    let var, pos = get_name s pos in
    (Event.Read { tid; var }, pos)
  | '\007' ->
    let lock, pos = get_name s pos in
    (Event.Acquire { tid; lock }, pos)
  | '\008' ->
    let lock, pos = get_name s pos in
    (Event.Release { tid; lock }, pos)
  | c -> corrupt "unknown event tag 0x%02x" (Char.code c)

let event_bytes ev =
  let b = Buffer.create 32 in
  put_event b ev;
  Buffer.length b

(* ------------------------------------------------------- batch decoding *)

let iter_events ?(pos = 0) ?len s f =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Bincodec.iter_events: slice out of bounds";
  let stop = pos + len in
  let p = ref pos in
  let n = ref 0 in
  while !p < stop do
    let ev, p' = get_event s !p in
    if p' > stop then corrupt "event runs past the end of its slice";
    f ev;
    incr n;
    p := p'
  done;
  !n

let get_events s ~pos ~count =
  if count < 0 then invalid_arg "Bincodec.get_events: negative count";
  if count = 0 then ([||], pos)
  else begin
    let p = ref pos in
    let evs =
      Array.init count (fun _ ->
          let ev, p' = get_event s !p in
          p := p';
          ev)
    in
    (evs, !p)
  end

let iter_events_bytes buf ~pos ~len f =
  (* Zero-copy entry for network/file read buffers: [Bytes.unsafe_to_string]
     aliases the bytes without copying, and every event is materialized
     before this call returns, so the aliasing is safe as long as the caller
     does not mutate [buf] concurrently — the contract stated in the mli. *)
  iter_events ~pos ~len (Bytes.unsafe_to_string buf) f

(* ------------------------------------------------------------ checksum *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let t = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff
