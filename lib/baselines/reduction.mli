(** Atomizer-style dynamic atomicity checking by Lipton reduction
    (Flanagan & Freund [6]; paper §8).

    The analysis consumes a [`Full]-level log (reads, writes, lock
    transitions).  Phase 1 computes locksets: a variable accessed by more
    than one thread with no common protecting lock is {e racy}.  Phase 2
    classifies each action of each method execution — lock acquires are
    right-movers, releases left-movers, accesses to race-free variables
    both-movers, racy accesses non-movers — and an execution is {e atomic}
    iff its action string matches [(R|B)* N? (L|B)*].

    The paper's §8 point, reproduced by the [baseline-atomizer] benchmark
    and the related-work tests: correct methods such as the multiset's
    [insert_pair] (two lock-protected writes released in between) are not
    reducible, so atomicity checking raises false alarms exactly where
    refinement checking proves the implementation correct. *)

type method_summary = {
  mid : string;
  executions : int;
  atomic : int;  (** executions matching the reducible pattern *)
}

type result = {
  racy_vars : string list;  (** variables with no consistent lock discipline *)
  methods : method_summary list;  (** sorted by method name *)
}

(** @raise Invalid_argument if the log was recorded below level [`Full]: a
    log without reads and lock transitions would make every variable look
    unshared and every method reducible, so the analysis refuses it (same
    fail-fast discipline as [`View]-mode checking of a sub-[`View] log). *)
val analyze : Vyrd.Log.t -> result

(** Every execution of [mid] was reducible.  Methods never executed count as
    atomic. *)
val method_atomic : result -> string -> bool

val pp : Format.formatter -> result -> unit
