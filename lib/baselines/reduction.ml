open Vyrd
module Tid = Vyrd_sched.Tid

type method_summary = { mid : string; executions : int; atomic : int }
type result = { racy_vars : string list; methods : method_summary list }

module SSet = Set.Make (String)

(* Phase 1: lockset analysis.  For each variable, intersect the sets of
   locks held at its accesses; a variable touched by several threads with an
   empty intersection has no consistent lock discipline. *)
let locksets log =
  let held : (Tid.t, (string * int) list) Hashtbl.t = Hashtbl.create 16 in
  let lockset tid =
    match Hashtbl.find_opt held tid with
    | Some locks -> SSet.of_list (List.map fst locks)
    | None -> SSet.empty
  in
  let acquire tid lock =
    let locks = Option.value ~default:[] (Hashtbl.find_opt held tid) in
    let locks =
      match List.assoc_opt lock locks with
      | Some n -> (lock, n + 1) :: List.remove_assoc lock locks
      | None -> (lock, 1) :: locks
    in
    Hashtbl.replace held tid locks
  in
  let release tid lock =
    let locks = Option.value ~default:[] (Hashtbl.find_opt held tid) in
    let locks =
      match List.assoc_opt lock locks with
      | Some n when n > 1 -> (lock, n - 1) :: List.remove_assoc lock locks
      | Some _ -> List.remove_assoc lock locks
      | None -> locks
    in
    Hashtbl.replace held tid locks
  in
  let candidate : (string, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let accessors : (string, Tid.t list) Hashtbl.t = Hashtbl.create 64 in
  let access tid var =
    let ls = lockset tid in
    (match Hashtbl.find_opt candidate var with
    | Some cur -> Hashtbl.replace candidate var (SSet.inter cur ls)
    | None -> Hashtbl.replace candidate var ls);
    let ts = Option.value ~default:[] (Hashtbl.find_opt accessors var) in
    if not (List.mem tid ts) then Hashtbl.replace accessors var (tid :: ts)
  in
  Log.iter
    (fun ev ->
      match ev with
      | Event.Acquire { tid; lock } -> acquire tid lock
      | Event.Release { tid; lock } -> release tid lock
      | Event.Read { tid; var } | Event.Write { tid; var; _ } -> access tid var
      | _ -> ())
    log;
  let racy =
    Hashtbl.fold
      (fun var ls acc ->
        let multi =
          match Hashtbl.find_opt accessors var with
          | Some (_ :: _ :: _) -> true
          | _ -> false
        in
        if multi && SSet.is_empty ls then var :: acc else acc)
      candidate []
  in
  SSet.of_list racy

(* Phase 2: per-execution mover strings checked against (R|B)* N? (L|B)*. *)
type phase = Pre | Post

(* Mirrors Checker.require_view_level (the PR-1 view-on-io guard): without
   Read/Acquire/Release events every variable looks unshared and every
   method reducible, so a sub-`Full log would silently yield an
   all-clear.  Fail fast with a configuration error instead. *)
let require_full_level ~who log =
  if not (Log.records_reads log) then
    invalid_arg
      (Printf.sprintf
         "%s: lockset/reduction analysis requires a log recorded at level \
          `Full (this log records at `%s); re-record the run with full-level \
          logging"
         who
         (match Log.level log with
         | `None -> "None"
         | `Io -> "Io"
         | `View -> "View"
         | `Full -> "Full"))

let analyze log =
  require_full_level ~who:"Reduction.analyze" log;
  let racy = locksets log in
  let current : (Tid.t, string * phase * bool) Hashtbl.t = Hashtbl.create 16 in
  (* per mid: (executions, atomic) *)
  let tally : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let step tid update =
    match Hashtbl.find_opt current tid with
    | None -> ()  (* action outside any method execution *)
    | Some (mid, phase, ok) ->
      let phase', ok' = update (phase, ok) in
      Hashtbl.replace current tid (mid, phase', ok')
  in
  let right_mover (phase, ok) =
    match phase with Pre -> (Pre, ok) | Post -> (Post, false)
  in
  let left_mover (_, ok) = (Post, ok) in
  let non_mover (phase, ok) =
    match phase with Pre -> (Post, ok) | Post -> (Post, false)
  in
  let both_mover state = state in
  Log.iter
    (fun ev ->
      match ev with
      | Event.Call { tid; mid; _ } -> Hashtbl.replace current tid (mid, Pre, true)
      | Event.Return { tid; _ } -> (
        match Hashtbl.find_opt current tid with
        | None -> ()
        | Some (mid, _, ok) ->
          Hashtbl.remove current tid;
          let execs, atomic =
            Option.value ~default:(0, 0) (Hashtbl.find_opt tally mid)
          in
          Hashtbl.replace tally mid (execs + 1, if ok then atomic + 1 else atomic))
      | Event.Acquire { tid; _ } -> step tid right_mover
      | Event.Release { tid; _ } -> step tid left_mover
      | Event.Read { tid; var } | Event.Write { tid; var; _ } ->
        step tid (if SSet.mem var racy then non_mover else both_mover)
      | Event.Commit _ | Event.Block_begin _ | Event.Block_end _ -> ())
    log;
  {
    racy_vars = List.sort compare (SSet.elements racy);
    methods =
      Hashtbl.fold
        (fun mid (executions, atomic) acc -> { mid; executions; atomic } :: acc)
        tally []
      |> List.sort (fun a b -> compare a.mid b.mid);
  }

let method_atomic result mid =
  match List.find_opt (fun m -> m.mid = mid) result.methods with
  | Some m -> m.atomic = m.executions
  | None -> true

let pp ppf r =
  Fmt.pf ppf "@[<v>racy variables: %a@ %a@]"
    Fmt.(list ~sep:comma string)
    r.racy_vars
    Fmt.(
      list ~sep:cut (fun ppf m ->
          pf ppf "%-14s %d/%d executions reducible" m.mid m.atomic m.executions))
    r.methods
