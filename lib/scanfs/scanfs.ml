open Vyrd
module Sched = Vyrd_sched.Sched
module Cell = Instrument.Cell

type bug = Unprotected_dirty_copy

let block_size = 8
let blocks_per_file = 2
let file_size = block_size * blocks_per_file

type block_state = Absent | Clean | Dirty

type block = { state : block_state Cell.t; data : char Cell.t array }

type t = {
  ctx : Instrument.ctx;
  fs_lock : Sched.mutex;  (* serializes directory operations *)
  clean_lock : Sched.mutex;  (* the block cache's lock *)
  blocks : block array;
  disk : string Cell.t array;
  names : string list Cell.t;  (* every name ever created; drives the view *)
  dir : (string, Repr.t Cell.t) Hashtbl.t;
  mutable free : int list;
  bugs : bug list;
}

let state_var b = Printf.sprintf "fstate[%d]" b
let data_var b j = Printf.sprintf "fblk[%d][%d]" b j
let disk_var b = Printf.sprintf "disk[%d]" b
let dir_var name = Printf.sprintf "dir[%s]" name

let state_repr = function
  | Absent -> Repr.Str "none"
  | Clean -> Repr.Str "clean"
  | Dirty -> Repr.Str "dirty"

let create_fs ?(bugs = []) ~disk_blocks ctx =
  let block b =
    {
      state = Cell.make ctx ~name:(state_var b) ~repr:state_repr Absent;
      data =
        Array.init block_size (fun j ->
            Cell.make ctx ~name:(data_var b j)
              ~repr:(fun c -> Repr.Str (String.make 1 c))
              '\000');
    }
  in
  {
    ctx;
    fs_lock = Instrument.mutex ctx ~name:"fs";
    clean_lock = Instrument.mutex ctx ~name:"fclean";
    blocks = Array.init disk_blocks block;
    disk =
      Array.init disk_blocks (fun b ->
          Cell.make ctx ~name:(disk_var b) ~repr:(fun s -> Repr.Str s) "");
    names =
      Cell.make ctx ~name:"fs.names"
        ~repr:(fun ns -> Repr.List (List.map (fun n -> Repr.Str n) ns))
        [];
    dir = Hashtbl.create 16;
    free = List.init disk_blocks Fun.id;
    bugs;
  }

let dir_cell t name =
  Sched.atomic t.ctx.Instrument.sched (fun () ->
      match Hashtbl.find_opt t.dir name with
      | Some c -> c
      | None ->
        let c = Cell.make t.ctx ~name:(dir_var name) ~repr:Fun.id Repr.Unit in
        Hashtbl.replace t.dir name c;
        c)

(* directory entry encoding: Unit = absent; (len, blocks) otherwise *)
let entry_repr len blocks =
  Repr.List [ Repr.Int len; Repr.List (List.map (fun b -> Repr.Int b) blocks) ]

let entry_of_repr = function
  | Repr.Unit -> None
  | Repr.List [ Repr.Int len; Repr.List bs ] ->
    Some (len, List.map (function Repr.Int b -> b | _ -> assert false) bs)
  | _ -> None

let pad data =
  let n = String.length data in
  if n >= file_size then String.sub data 0 file_size
  else data ^ String.make (file_size - n) '\000'

(* --- the block cache --------------------------------------------------- *)

let copy_block t b data =
  Array.iteri (fun j cell -> Cell.set cell data.[j]) t.blocks.(b).data

let read_block_entry t b =
  String.init block_size (fun j -> Cell.get t.blocks.(b).data.(j))

let buggy t = List.mem Unprotected_dirty_copy t.bugs

(* Write one block through the cache; [data] has exactly [block_size]
   bytes.  Mirrors Fig. 8's WRITE: the in-place copy to an already-dirty
   entry is the buggy unprotected path. *)
let cache_write t b data =
  let blk = t.blocks.(b) in
  t.clean_lock.Sched.lock ();
  match Cell.get blk.state with
  | Absent | Clean ->
    copy_block t b data;
    Cell.set blk.state Dirty;
    t.clean_lock.Sched.unlock ()
  | Dirty ->
    if buggy t then begin
      (* the bug of §7.3: the scan flush can interleave this copy *)
      t.clean_lock.Sched.unlock ();
      copy_block t b data
    end
    else begin
      copy_block t b data;
      t.clean_lock.Sched.unlock ()
    end

let cache_read t b =
  Sched.with_lock t.clean_lock (fun () ->
      match Cell.get t.blocks.(b).state with
      | Absent ->
        let s = Cell.get t.disk.(b) in
        if s = "" then String.make block_size '\000' else s
      | Clean | Dirty -> read_block_entry t b)

(* --- public file operations -------------------------------------------- *)

let create t name =
  let body () =
    Sched.with_lock t.fs_lock (fun () ->
        let cell = dir_cell t name in
        if entry_of_repr (Cell.get cell) <> None then Repr.Bool false
        else begin
          Instrument.with_block t.ctx (fun () ->
              Cell.set t.names (name :: Cell.peek t.names);
              Cell.set_and_commit cell (entry_repr 0 []));
          Repr.Bool true
        end)
  in
  Instrument.op t.ctx "create" [ Repr.Str name ] body = Repr.Bool true

let take_blocks t n =
  let rec take n free =
    if n = 0 then ([], free)
    else
      match free with
      | b :: rest ->
        let bs, rest' = take (n - 1) rest in
        (b :: bs, rest')
      | [] -> assert false
  in
  if List.length t.free < n then None
  else begin
    let blocks, rest = take n t.free in
    t.free <- rest;
    Some blocks
  end

(* Scan is write-optimized: a file write goes to freshly allocated blocks
   and the directory update publishes them, so a concurrent flush/evict can
   never expose uncommitted or torn file contents.  The buggy variant keeps
   the legacy in-place overwrite: it reuses the file's current blocks, whose
   dirty cache entries it overwrites without the cache lock — the Scan cache
   bug of §7.3. *)
let write t name data =
  let data = pad data in
  let body () =
    Sched.with_lock t.fs_lock (fun () ->
        let cell = dir_cell t name in
        match entry_of_repr (Cell.get cell) with
        | None -> Repr.Bool false
        | Some (_, old_blocks) ->
          let in_place = buggy t && List.length old_blocks = blocks_per_file in
          let fresh =
            if in_place then Some old_blocks else take_blocks t blocks_per_file
          in
          (match fresh with
          | None -> Repr.Bool false (* disk full *)
          | Some blocks ->
            Instrument.with_block t.ctx (fun () ->
                List.iteri
                  (fun i b ->
                    cache_write t b (String.sub data (i * block_size) block_size))
                  blocks;
                Cell.set_and_commit cell (entry_repr file_size blocks));
            if not in_place then t.free <- old_blocks @ t.free;
            Repr.Bool true))
  in
  Instrument.op t.ctx "fwrite" [ Repr.Str name; Repr.Str data ] body = Repr.Bool true

let append t name data =
  let body () =
    Sched.with_lock t.fs_lock (fun () ->
        let cell = dir_cell t name in
        match entry_of_repr (Cell.get cell) with
        | None -> Repr.Bool false
        | Some (len, old_blocks) ->
          if len + String.length data > file_size then Repr.Bool false
          else (
            (* copy-on-write: read the current contents, extend, rewrite *)
            let current =
              String.concat "" (List.map (cache_read t) old_blocks)
            in
            let content = String.sub current 0 len ^ data in
            let padded = pad content in
            match take_blocks t blocks_per_file with
            | None -> Repr.Bool false
            | Some blocks ->
              Instrument.with_block t.ctx (fun () ->
                  List.iteri
                    (fun i b ->
                      cache_write t b
                        (String.sub padded (i * block_size) block_size))
                    blocks;
                  Cell.set_and_commit cell
                    (entry_repr (String.length content) blocks));
              t.free <- old_blocks @ t.free;
              Repr.Bool true))
  in
  Instrument.op t.ctx "fappend" [ Repr.Str name; Repr.Str data ] body = Repr.Bool true

(* The two-resource operation: both directory entries change atomically at
   one commit (cf. the paper's InsertPair, §2.1). *)
let rename t ~src ~dst =
  let body () =
    Sched.with_lock t.fs_lock (fun () ->
        let src_cell = dir_cell t src in
        let dst_cell = dir_cell t dst in
        match (entry_of_repr (Cell.get src_cell), entry_of_repr (Cell.get dst_cell)) with
        | None, _ | _, Some _ -> Repr.Bool false
        | Some (len, blocks), None ->
          Instrument.with_block t.ctx (fun () ->
              Cell.set t.names (dst :: Cell.peek t.names);
              Cell.set dst_cell (entry_repr len blocks);
              Cell.set_and_commit src_cell Repr.Unit);
          Repr.Bool true)
  in
  Instrument.op t.ctx "frename" [ Repr.Str src; Repr.Str dst ] body = Repr.Bool true

let read t name =
  let body () =
    Sched.with_lock t.fs_lock (fun () ->
        let cell = dir_cell t name in
        match entry_of_repr (Cell.get cell) with
        | None -> Repr.Unit
        | Some (len, blocks) ->
          let content = String.concat "" (List.map (cache_read t) blocks) in
          Repr.Str (String.sub content 0 len))
  in
  match Instrument.op t.ctx "fread" [ Repr.Str name ] body with
  | Repr.Str s -> Some s
  | _ -> None

let delete t name =
  let body () =
    Sched.with_lock t.fs_lock (fun () ->
        let cell = dir_cell t name in
        match entry_of_repr (Cell.get cell) with
        | None -> Repr.Bool false
        | Some (_, blocks) ->
          Instrument.with_block t.ctx (fun () ->
              Cell.set_and_commit cell Repr.Unit);
          t.free <- blocks @ t.free;
          Repr.Bool true)
  in
  Instrument.op t.ctx "fdelete" [ Repr.Str name ] body = Repr.Bool true

let exists t name =
  let body () =
    Sched.with_lock t.fs_lock (fun () ->
        Repr.Bool (entry_of_repr (Cell.get (dir_cell t name)) <> None))
  in
  Instrument.op t.ctx "exists" [ Repr.Str name ] body = Repr.Bool true

(* --- daemons ------------------------------------------------------------ *)

(* One elevator pass: flush dirty blocks in ascending order. *)
let sync t =
  let body () =
    Sched.with_lock t.clean_lock (fun () ->
        Instrument.with_block t.ctx (fun () ->
            Array.iteri
              (fun b blk ->
                if Cell.get blk.state = Dirty then begin
                  Cell.set t.disk.(b) (read_block_entry t b);
                  Cell.set blk.state Clean
                end)
              t.blocks;
            Instrument.commit t.ctx));
    Repr.Unit
  in
  ignore (Instrument.op t.ctx "sync" [] body)

let evict t b =
  let body () =
    Sched.with_lock t.clean_lock (fun () ->
        let blk = t.blocks.(b) in
        match Cell.get blk.state with
        | Absent -> Instrument.commit t.ctx
        | Clean -> Cell.set_and_commit blk.state Absent
        | Dirty ->
          Instrument.with_block t.ctx (fun () ->
              Cell.set t.disk.(b) (read_block_entry t b);
              Cell.set blk.state Absent;
              Instrument.commit t.ctx));
    Repr.Unit
  in
  ignore (Instrument.op t.ctx "evict" [ Repr.Int b ] body)

(* --- view and specification --------------------------------------------- *)

let viewdef : View.t =
  View.Full
    (fun lookup ->
      let names =
        match lookup "fs.names" with
        | Some (Repr.List ns) ->
          List.filter_map (function Repr.Str n -> Some n | _ -> None) ns
        | Some _ | None -> []
      in
      let block_bytes b =
        let from_entry () =
          String.init block_size (fun j ->
              match lookup (data_var b j) with
              | Some (Repr.Str s) when String.length s = 1 -> s.[0]
              | _ -> '\000')
        in
        match lookup (state_var b) with
        | Some (Repr.Str ("clean" | "dirty")) -> from_entry ()
        | _ -> (
          match lookup (disk_var b) with
          | Some (Repr.Str s) when s <> "" -> s
          | _ -> String.make block_size '\000')
      in
      let file name =
        match Option.bind (lookup (dir_var name)) entry_of_repr with
        | None -> None
        | Some (len, blocks) ->
          let content = String.concat "" (List.map block_bytes blocks) in
          Some (Repr.Str name, Repr.Str (String.sub content 0 len))
      in
      View.canonical_of_assoc
        (List.filter_map file (List.sort_uniq compare names)))

(* Only blocks referenced by a committed directory entry are constrained: a
   copy-on-write update buffers its cache mutations until the directory
   commit, so an unreferenced block legitimately appears "clean" in the
   replay while the flush daemon has already pushed its in-flight bytes to
   disk. *)
let invariant_clean_matches_disk ~disk_blocks : Checker.invariant =
  ignore disk_blocks;
  ( "clean cached file block matches disk",
    fun lookup ->
      let entry_bytes b =
        String.init block_size (fun j ->
            match lookup (data_var b j) with
            | Some (Repr.Str s) when String.length s = 1 -> s.[0]
            | _ -> '\000')
      in
      let disk_bytes b =
        match lookup (disk_var b) with
        | Some (Repr.Str s) when s <> "" -> s
        | _ -> String.make block_size '\000'
      in
      let block_ok b =
        match lookup (state_var b) with
        | Some (Repr.Str "clean") -> entry_bytes b = disk_bytes b
        | _ -> true
      in
      let names =
        match lookup "fs.names" with
        | Some (Repr.List ns) ->
          List.filter_map (function Repr.Str n -> Some n | _ -> None) ns
        | Some _ | None -> []
      in
      List.for_all
        (fun name ->
          match Option.bind (lookup (dir_var name)) entry_of_repr with
          | Some (_, blocks) -> List.for_all block_ok blocks
          | None -> true)
        (List.sort_uniq compare names) )

module SMap = Map.Make (String)

module S = struct
  type state = string SMap.t

  let name = "scanfs"
  let init () = SMap.empty

  let kind = function
    | "create" | "fwrite" | "fappend" | "frename" | "fdelete" -> Spec.Mutator
    | "fread" | "exists" -> Spec.Observer
    | "sync" | "evict" -> Spec.Internal
    | m -> invalid_arg ("scanfs spec: unknown method " ^ m)

  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt

  let apply st ~mid ~args ~ret =
    match (mid, args, ret) with
    | "create", [ Repr.Str n ], Repr.Bool true ->
      if SMap.mem n st then bad "create(%s) succeeded but the file exists" n
      else Ok (SMap.add n "" st)
    | "create", [ Repr.Str _ ], Repr.Bool false -> Ok st
    | "fwrite", [ Repr.Str n; Repr.Str d ], Repr.Bool true ->
      if SMap.mem n st then Ok (SMap.add n d st)
      else bad "write(%s) succeeded but the file does not exist" n
    | "fwrite", [ Repr.Str _; Repr.Str _ ], Repr.Bool false ->
      (* missing file or disk full; either way no transition *)
      Ok st
    | "fappend", [ Repr.Str n; Repr.Str d ], Repr.Bool true -> (
      match SMap.find_opt n st with
      | Some c when String.length c + String.length d <= file_size ->
        Ok (SMap.add n (c ^ d) st)
      | Some _ -> bad "append(%s) succeeded but the data does not fit" n
      | None -> bad "append(%s) succeeded but the file does not exist" n)
    | "fappend", [ Repr.Str _; Repr.Str _ ], Repr.Bool false -> Ok st
    | "frename", [ Repr.Str src; Repr.Str dst ], Repr.Bool true -> (
      match (SMap.find_opt src st, SMap.mem dst st) with
      | Some c, false -> Ok (SMap.add dst c (SMap.remove src st))
      | None, _ -> bad "rename(%s) succeeded but the source does not exist" src
      | _, true -> bad "rename to %s succeeded but the destination exists" dst)
    | "frename", [ Repr.Str _; Repr.Str _ ], Repr.Bool false -> Ok st
    | "fdelete", [ Repr.Str n ], Repr.Bool true ->
      if SMap.mem n st then Ok (SMap.remove n st)
      else bad "delete(%s) succeeded but the file does not exist" n
    | "fdelete", [ Repr.Str n ], Repr.Bool false ->
      if SMap.mem n st then bad "delete(%s) failed but the file exists" n else Ok st
    | ("sync" | "evict"), _, Repr.Unit -> Ok st
    | mid, _, _ -> bad "no %s transition matches the observed arguments/return" mid

  let observe st ~mid ~args ~ret =
    match (mid, args, ret) with
    | "fread", [ Repr.Str n ], Repr.Str s -> SMap.find_opt n st = Some s
    | "fread", [ Repr.Str n ], Repr.Unit -> not (SMap.mem n st)
    | "exists", [ Repr.Str n ], Repr.Bool b -> b = SMap.mem n st
    (* non-committing mutator executions: create may also fail when the
       disk is full, so a false return is always admissible for it *)
    | "create", [ Repr.Str n ], Repr.Bool false -> SMap.mem n st
    | "fwrite", [ Repr.Str _; _ ], Repr.Bool false -> true (* absent or disk full *)
    | "fappend", [ Repr.Str _; _ ], Repr.Bool false -> true (* absent, full, overflow *)
    | "frename", [ Repr.Str src; Repr.Str dst ], Repr.Bool false ->
      (not (SMap.mem src st)) || SMap.mem dst st
    | "fdelete", [ Repr.Str n ], Repr.Bool false -> not (SMap.mem n st)
    | ("sync" | "evict"), _, Repr.Unit -> true
    | _ -> false

  let view st =
    View.canonical_of_assoc
      (SMap.fold (fun n c acc -> (Repr.Str n, Repr.Str c) :: acc) st [])

  let snapshot st = st

  let save st =
    Some
      (Repr.List
         (SMap.fold (fun n c acc -> Repr.Pair (Repr.Str n, Repr.Str c) :: acc) st []))

  let load = function
    | Repr.List kvs ->
      List.fold_left
        (fun st -> function
          | Repr.Pair (Repr.Str n, Repr.Str c) -> SMap.add n c st
          | v -> invalid_arg ("scanfs spec: bad saved entry " ^ Repr.to_string v))
        SMap.empty kvs
    | v -> invalid_arg ("scanfs spec: bad saved state " ^ Repr.to_string v)
end

let spec : Spec.t = (module S)
