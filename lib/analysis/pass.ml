open Vyrd
module Tid = Vyrd_sched.Tid

type severity = [ `Error | `Warning ]

type diag = {
  pass : string;
  id : string;
  severity : severity;
  position : int;
  tid : Tid.t option;
  text : string;
}

type summary = {
  pass : string;
  events : int;
  errors : int;
  warnings : int;
  diags : diag list;
  dropped : int;
}

type t = { name : string; feed : Event.t -> unit; finish : unit -> summary }

(* In-service summaries must stay bounded no matter how broken the stream
   is; counts above the cap are exact, the diagnostics themselves are not. *)
let max_diags = 64

let summarize ~pass ~events diags =
  let errors =
    List.length (List.filter (fun d -> d.severity = `Error) diags)
  in
  let warnings =
    List.length (List.filter (fun d -> d.severity = `Warning) diags)
  in
  let n = List.length diags in
  let diags =
    if n <= max_diags then diags
    else List.filteri (fun i _ -> i < max_diags) diags
  in
  { pass; events; errors; warnings; diags; dropped = max 0 (n - max_diags) }

let racedetect () =
  let name = "race" in
  let d = Racedetect.create () in
  {
    name;
    feed = Racedetect.feed d;
    finish =
      (fun () ->
        let r = Racedetect.result d in
        let diags =
          List.map
            (fun (race : Racedetect.race) ->
              {
                pass = name;
                id = "data-race";
                severity = `Error;
                position = race.Racedetect.current.Racedetect.index;
                tid = Some race.Racedetect.current.Racedetect.tid;
                text = Fmt.str "%a" Racedetect.pp_race race;
              })
            r.Racedetect.races
        in
        summarize ~pass:name ~events:r.Racedetect.events diags);
  }

let lint () =
  let name = "lint" in
  let l = Lint.create () in
  {
    name;
    feed = Lint.feed l;
    finish =
      (fun () ->
        let r = Lint.finish l in
        let diags =
          List.map
            (fun (d : Lint.diag) ->
              {
                pass = name;
                id = Lint.kind_id d.Lint.kind;
                severity =
                  (match d.Lint.severity with
                  | Lint.Error -> `Error
                  | Lint.Warning -> `Warning);
                position = d.Lint.position;
                tid = Some d.Lint.tid;
                text = Lint.message d.Lint.kind;
              })
            r.Lint.diags
        in
        summarize ~pass:name ~events:r.Lint.events diags);
  }

let lockgraph () =
  let name = "lockgraph" in
  let g = Lockgraph.create () in
  {
    name;
    feed = Lockgraph.feed g;
    finish =
      (fun () ->
        let r = Lockgraph.result g in
        let diags =
          List.map
            (fun (c : Lockgraph.cycle) ->
              let w0 = List.hd c.Lockgraph.chosen in
              {
                pass = name;
                id = "lock-order-cycle";
                severity = `Error;
                position = w0.Lockgraph.index;
                tid = None;
                text = Fmt.str "@[<h>%a@]" Lockgraph.pp_cycle c;
              })
            r.Lockgraph.cycles
        in
        summarize ~pass:name ~events:r.Lockgraph.events diags);
  }

(* Which passes are meaningful at a given log level: the linter and the lock
   graph degrade gracefully on sparser logs (fewer event classes, never a
   wrong verdict), but happens-before race detection without lock events
   would call every write pair racy — it only runs at [`Full]. *)
let for_level (level : Log.level) =
  match level with
  | `Full -> [ lint (); lockgraph (); racedetect () ]
  | `None | `Io | `View -> [ lint (); lockgraph () ]

let all () = for_level `Full

let clean s = s.errors = 0

let pp_diag ppf (d : diag) =
  Fmt.pf ppf "[%s/%s] @%d%a: %s" d.pass d.id d.position
    Fmt.(option (fun ppf t -> pf ppf " %s" (Tid.to_string t)))
    d.tid d.text

let pp_summary ppf s =
  if s.diags = [] && s.dropped = 0 then
    Fmt.pf ppf "%s: clean (%d events)" s.pass s.events
  else
    Fmt.pf ppf "@[<v>%s: %d error(s), %d warning(s) in %d events%s:@ %a@]"
      s.pass s.errors s.warnings s.events
      (if s.dropped > 0 then Fmt.str " (%d diag(s) dropped)" s.dropped else "")
      Fmt.(list ~sep:cut pp_diag)
      s.diags
