open Vyrd
module Tid = Vyrd_sched.Tid

type severity = Error | Warning

type kind =
  | Duplicate_commit of { mid : string; first : int }
  | Uncommitted_mutation of { mid : string; writes : int }
  | Commit_outside_method
  | Write_outside_method of { var : string }
  | Block_outside_method
  | Unbalanced_block_end
  | Unclosed_block of { opened : int }
  | Release_without_acquire of { lock : string }
  | Unreleased_lock of { lock : string; acquired : int }
  | Nested_call of { outer : string }
  | Return_without_call of { mid : string }
  | Return_mismatch of { expected : string; got : string }

type diag = { position : int; tid : Tid.t; severity : severity; kind : kind }
type result = { diags : diag list; errors : int; warnings : int; events : int }

let severity_of = function
  | Uncommitted_mutation _ | Unreleased_lock _ -> Warning
  | Duplicate_commit _ | Commit_outside_method | Write_outside_method _
  | Block_outside_method | Unbalanced_block_end | Unclosed_block _
  | Release_without_acquire _ | Nested_call _ | Return_without_call _
  | Return_mismatch _ -> Error

(* Per-thread linter state.  [exec] is the open method execution, if any. *)
type exec = {
  mid : string;
  call_index : int;
  mutable first_commit : int option;
  mutable writes : int;
}

type tstate = {
  mutable exec : exec option;
  mutable blocks : int list;  (* open Block_begin positions, innermost first *)
  mutable held : (string * (int * int)) list;  (* lock -> count, acquire pos *)
}

let check log =
  (* Threads that never record a Call are initialization / daemon threads:
     their writes and commits are §6.2 coarse-grained logging, not method
     actions, so the outside-a-method checks do not apply to them. *)
  let calling = Hashtbl.create 16 in
  Log.iter
    (fun ev ->
      match ev with
      | Event.Call { tid; _ } -> Hashtbl.replace calling tid ()
      | _ -> ())
    log;
  let calling tid = Hashtbl.mem calling tid in
  let threads : (Tid.t, tstate) Hashtbl.t = Hashtbl.create 16 in
  let state tid =
    match Hashtbl.find_opt threads tid with
    | Some s -> s
    | None ->
      let s = { exec = None; blocks = []; held = [] } in
      Hashtbl.replace threads tid s;
      s
  in
  let diags = ref [] in
  let emit position tid kind =
    diags := { position; tid; severity = severity_of kind; kind } :: !diags
  in
  let close_exec position tid (e : exec) =
    if e.first_commit = None && e.writes > 0 then
      emit position tid (Uncommitted_mutation { mid = e.mid; writes = e.writes })
  in
  let index = ref 0 in
  Log.iter
    (fun ev ->
      let i = !index in
      incr index;
      match ev with
      | Event.Call { tid; mid; _ } ->
        let s = state tid in
        (match s.exec with
        | Some outer -> emit i tid (Nested_call { outer = outer.mid })
        | None -> ());
        s.exec <- Some { mid; call_index = i; first_commit = None; writes = 0 }
      | Event.Return { tid; mid; _ } -> (
        let s = state tid in
        match s.exec with
        | None -> emit i tid (Return_without_call { mid })
        | Some e ->
          if e.mid <> mid then
            emit i tid (Return_mismatch { expected = e.mid; got = mid });
          (* blocks opened inside this execution must have closed *)
          List.iter
            (fun opened ->
              if opened > e.call_index then
                emit i tid (Unclosed_block { opened }))
            s.blocks;
          s.blocks <- List.filter (fun opened -> opened <= e.call_index) s.blocks;
          close_exec i tid e;
          s.exec <- None)
      | Event.Commit { tid } -> (
        let s = state tid in
        match s.exec with
        | Some e -> (
          match e.first_commit with
          | None -> e.first_commit <- Some i
          | Some first -> emit i tid (Duplicate_commit { mid = e.mid; first }))
        | None -> if calling tid then emit i tid Commit_outside_method)
      | Event.Write { tid; var; _ } -> (
        let s = state tid in
        match s.exec with
        | Some e -> e.writes <- e.writes + 1
        | None -> if calling tid then emit i tid (Write_outside_method { var }))
      | Event.Block_begin { tid } ->
        let s = state tid in
        if s.exec = None && calling tid then emit i tid Block_outside_method;
        s.blocks <- i :: s.blocks
      | Event.Block_end { tid } -> (
        let s = state tid in
        match s.blocks with
        | _ :: rest -> s.blocks <- rest
        | [] -> emit i tid Unbalanced_block_end)
      | Event.Read _ -> ()
      | Event.Acquire { tid; lock } ->
        let s = state tid in
        s.held <-
          (match List.assoc_opt lock s.held with
          | Some (n, first) -> (lock, (n + 1, first)) :: List.remove_assoc lock s.held
          | None -> (lock, (1, i)) :: s.held)
      | Event.Release { tid; lock } -> (
        let s = state tid in
        match List.assoc_opt lock s.held with
        | Some (n, first) ->
          s.held <-
            (if n > 1 then (lock, (n - 1, first)) :: List.remove_assoc lock s.held
             else List.remove_assoc lock s.held)
        | None -> emit i tid (Release_without_acquire { lock })))
    log;
  let events = !index in
  (* End-of-log findings, sorted for determinism: a log may legitimately be
     truncated mid-execution (a checker stopping at the violation), so open
     calls are not flagged — but open blocks and held locks are. *)
  let tail = ref [] in
  Hashtbl.iter
    (fun tid (s : tstate) ->
      List.iter
        (fun opened ->
          tail := (opened, tid, Unclosed_block { opened }) :: !tail)
        s.blocks;
      List.iter
        (fun (lock, (_, acquired)) ->
          tail := (acquired, tid, Unreleased_lock { lock; acquired }) :: !tail)
        s.held)
    threads;
  List.iter
    (fun (pos, tid, kind) -> emit pos tid kind)
    (List.sort compare !tail);
  let diags = List.rev !diags in
  {
    diags;
    errors = List.length (List.filter (fun d -> d.severity = Error) diags);
    warnings = List.length (List.filter (fun d -> d.severity = Warning) diags);
    events;
  }

let ok r = r.errors = 0

let kind_id = function
  | Duplicate_commit _ -> "duplicate-commit"
  | Uncommitted_mutation _ -> "uncommitted-mutation"
  | Commit_outside_method -> "commit-outside-method"
  | Write_outside_method _ -> "write-outside-method"
  | Block_outside_method -> "block-outside-method"
  | Unbalanced_block_end -> "unbalanced-block-end"
  | Unclosed_block _ -> "unclosed-block"
  | Release_without_acquire _ -> "release-without-acquire"
  | Unreleased_lock _ -> "unreleased-lock"
  | Nested_call _ -> "nested-call"
  | Return_without_call _ -> "return-without-call"
  | Return_mismatch _ -> "return-mismatch"

let message = function
  | Duplicate_commit { mid; first } ->
    Printf.sprintf "second commit in one execution of %s (first committed @%d)"
      mid first
  | Uncommitted_mutation { mid; writes } ->
    Printf.sprintf
      "execution of %s wrote %d variable(s) but never committed (legal only \
       for exceptional termination, §4.3)"
      mid writes
  | Commit_outside_method -> "commit outside any method execution"
  | Write_outside_method { var } ->
    Printf.sprintf "write to %s outside any method execution" var
  | Block_outside_method -> "commit block opened outside any method execution"
  | Unbalanced_block_end -> "block-end with no open block"
  | Unclosed_block { opened } ->
    Printf.sprintf "commit block opened @%d never closed" opened
  | Release_without_acquire { lock } ->
    Printf.sprintf "release of %s which is not held" lock
  | Unreleased_lock { lock; acquired } ->
    Printf.sprintf "lock %s (acquired @%d) still held at end of log" lock
      acquired
  | Nested_call { outer } ->
    Printf.sprintf "call while execution of %s is still open" outer
  | Return_without_call { mid } ->
    Printf.sprintf "return from %s with no open call" mid
  | Return_mismatch { expected; got } ->
    Printf.sprintf "return from %s while the open call is %s" got expected

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"

let pp_diag ppf d =
  Fmt.pf ppf "[%a] @%d %s: %s" pp_severity d.severity d.position
    (Tid.to_string d.tid) (message d.kind)

let pp ppf r =
  if r.diags = [] then Fmt.pf ppf "clean (%d events)" r.events
  else
    Fmt.pf ppf "@[<v>%d error(s), %d warning(s) in %d events:@ %a@]" r.errors
      r.warnings r.events
      Fmt.(list ~sep:cut pp_diag)
      r.diags
