open Vyrd
module Tid = Vyrd_sched.Tid

type severity = Error | Warning

type kind =
  | Duplicate_commit of { mid : string; first : int }
  | Uncommitted_mutation of { mid : string; writes : int }
  | Commit_outside_method
  | Write_outside_method of { var : string }
  | Block_outside_method
  | Unbalanced_block_end
  | Unclosed_block of { opened : int }
  | Release_without_acquire of { lock : string }
  | Unreleased_lock of { lock : string; acquired : int }
  | Nested_call of { outer : string }
  | Return_without_call of { mid : string }
  | Return_mismatch of { expected : string; got : string }
  | Commit_missing of { mid : string; committed : int }

type diag = { position : int; tid : Tid.t; severity : severity; kind : kind }
type result = { diags : diag list; errors : int; warnings : int; events : int }

let severity_of = function
  | Uncommitted_mutation _ | Unreleased_lock _ | Commit_missing _ -> Warning
  | Duplicate_commit _ | Commit_outside_method | Write_outside_method _
  | Block_outside_method | Unbalanced_block_end | Unclosed_block _
  | Release_without_acquire _ | Nested_call _ | Return_without_call _
  | Return_mismatch _ -> Error

(* Per-thread linter state.  [exec] is the open method execution, if any. *)
type exec = {
  mid : string;
  call_index : int;
  mutable first_commit : int option;
  mutable writes : int;
}

type tstate = {
  mutable exec : exec option;
  mutable blocks : int list;  (* open Block_begin positions, innermost first *)
  mutable held : (string * (int * int)) list;  (* lock -> count, acquire pos *)
  mutable pending : (int * diag) list;
      (* outside-method diags held back (rev, with creation seq) until the
         thread's first Call proves it is not a daemon thread *)
}

(* Per-mid commit statistics for the end-of-log consistency check: a method
   some of whose completed executions commit and some of which do not is
   missing a commit action on the latter (or terminated exceptionally,
   §4.3).  Unlike [Uncommitted_mutation] this needs no [Write] events, so
   it works on [`Io]-level logs — the only commit-discipline signal
   available there. *)
type mid_stat = {
  mutable committed : int;
  mutable uncommitted : (int * Tid.t) list;  (* Return position, thread *)
}

type t = {
  threads : (Tid.t, tstate) Hashtbl.t;
  calling : (Tid.t, unit) Hashtbl.t;
  mids : (string, mid_stat) Hashtbl.t;
  mutable diags_rev : (int * diag) list;  (* creation seq * diag *)
  mutable seq : int;
  mutable index : int;
}

let create () =
  {
    threads = Hashtbl.create 16;
    calling = Hashtbl.create 16;
    mids = Hashtbl.create 16;
    diags_rev = [];
    seq = 0;
    index = 0;
  }

let state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some s -> s
  | None ->
    let s = { exec = None; blocks = []; held = []; pending = [] } in
    Hashtbl.replace t.threads tid s;
    s

let mk_diag t position tid kind =
  let seq = t.seq in
  t.seq <- seq + 1;
  (seq, { position; tid; severity = severity_of kind; kind })

let emit t position tid kind = t.diags_rev <- mk_diag t position tid kind :: t.diags_rev

(* Threads that never record a Call are initialization / daemon threads:
   their writes and commits are §6.2 coarse-grained logging, not method
   actions, so the outside-a-method checks do not apply to them.  Streaming,
   we cannot know yet whether a thread will ever call — so the diagnostic is
   buffered and only released by the thread's first [Call]; threads still
   call-free at [finish] drop their buffer.  Creation-order sequence numbers
   put released diagnostics back in log order. *)
let emit_if_calling t position tid kind =
  if Hashtbl.mem t.calling tid then emit t position tid kind
  else
    let s = state t tid in
    s.pending <- mk_diag t position tid kind :: s.pending

let mid_stat t mid =
  match Hashtbl.find_opt t.mids mid with
  | Some s -> s
  | None ->
    let s = { committed = 0; uncommitted = [] } in
    Hashtbl.replace t.mids mid s;
    s

let close_exec t position tid (e : exec) =
  if e.first_commit = None && e.writes > 0 then
    emit t position tid (Uncommitted_mutation { mid = e.mid; writes = e.writes });
  let s = mid_stat t e.mid in
  if e.first_commit <> None then s.committed <- s.committed + 1
  else if e.writes = 0 then
    (* without writes the warning above stays silent; remember the return so
       [finish] can compare against this mid's committing executions *)
    s.uncommitted <- (position, tid) :: s.uncommitted

let feed t ev =
  let i = t.index in
  t.index <- i + 1;
  match ev with
  | Event.Call { tid; mid; _ } ->
    if not (Hashtbl.mem t.calling tid) then begin
      Hashtbl.replace t.calling tid ();
      let s = state t tid in
      t.diags_rev <- s.pending @ t.diags_rev;
      s.pending <- []
    end;
    let s = state t tid in
    (match s.exec with
    | Some outer -> emit t i tid (Nested_call { outer = outer.mid })
    | None -> ());
    s.exec <- Some { mid; call_index = i; first_commit = None; writes = 0 }
  | Event.Return { tid; mid; _ } -> (
    let s = state t tid in
    match s.exec with
    | None -> emit t i tid (Return_without_call { mid })
    | Some e ->
      if e.mid <> mid then
        emit t i tid (Return_mismatch { expected = e.mid; got = mid });
      (* blocks opened inside this execution must have closed *)
      List.iter
        (fun opened ->
          if opened > e.call_index then emit t i tid (Unclosed_block { opened }))
        s.blocks;
      s.blocks <- List.filter (fun opened -> opened <= e.call_index) s.blocks;
      close_exec t i tid e;
      s.exec <- None)
  | Event.Commit { tid } -> (
    let s = state t tid in
    match s.exec with
    | Some e -> (
      match e.first_commit with
      | None -> e.first_commit <- Some i
      | Some first -> emit t i tid (Duplicate_commit { mid = e.mid; first }))
    | None -> emit_if_calling t i tid Commit_outside_method)
  | Event.Write { tid; var; _ } -> (
    let s = state t tid in
    match s.exec with
    | Some e -> e.writes <- e.writes + 1
    | None -> emit_if_calling t i tid (Write_outside_method { var }))
  | Event.Block_begin { tid } ->
    let s = state t tid in
    if s.exec = None then emit_if_calling t i tid Block_outside_method;
    s.blocks <- i :: s.blocks
  | Event.Block_end { tid } -> (
    let s = state t tid in
    match s.blocks with
    | _ :: rest -> s.blocks <- rest
    | [] -> emit t i tid Unbalanced_block_end)
  | Event.Read _ -> ()
  | Event.Acquire { tid; lock } ->
    let s = state t tid in
    s.held <-
      (match List.assoc_opt lock s.held with
      | Some (n, first) -> (lock, (n + 1, first)) :: List.remove_assoc lock s.held
      | None -> (lock, (1, i)) :: s.held)
  | Event.Release { tid; lock } -> (
    let s = state t tid in
    match List.assoc_opt lock s.held with
    | Some (n, first) ->
      s.held <-
        (if n > 1 then (lock, (n - 1, first)) :: List.remove_assoc lock s.held
         else List.remove_assoc lock s.held)
    | None -> emit t i tid (Release_without_acquire { lock }))

let finish t =
  let events = t.index in
  let stream =
    List.sort compare t.diags_rev |> List.map snd
  in
  (* End-of-log findings, sorted for determinism: a log may legitimately be
     truncated mid-execution (a checker stopping at the violation), so open
     calls are not flagged — but open blocks and held locks are. *)
  let tail = ref [] in
  Hashtbl.iter
    (fun tid (s : tstate) ->
      List.iter
        (fun opened ->
          tail := (opened, tid, Unclosed_block { opened }) :: !tail)
        s.blocks;
      List.iter
        (fun (lock, (_, acquired)) ->
          tail := (acquired, tid, Unreleased_lock { lock; acquired }) :: !tail)
        s.held)
    t.threads;
  (* Commit consistency per mid: only meaningful once some execution of the
     same method did commit — a mid that never commits is an observer. *)
  Hashtbl.iter
    (fun mid (s : mid_stat) ->
      if s.committed > 0 then
        List.iter
          (fun (position, tid) ->
            tail :=
              (position, tid, Commit_missing { mid; committed = s.committed })
              :: !tail)
          s.uncommitted)
    t.mids;
  let tail =
    List.sort compare !tail
    |> List.map (fun (position, tid, kind) ->
           { position; tid; severity = severity_of kind; kind })
  in
  let diags = stream @ tail in
  {
    diags;
    errors = List.length (List.filter (fun d -> d.severity = Error) diags);
    warnings = List.length (List.filter (fun d -> d.severity = Warning) diags);
    events;
  }

let check log =
  let t = create () in
  Log.iter (feed t) log;
  finish t

let ok r = r.errors = 0

let kind_id = function
  | Duplicate_commit _ -> "duplicate-commit"
  | Uncommitted_mutation _ -> "uncommitted-mutation"
  | Commit_outside_method -> "commit-outside-method"
  | Write_outside_method _ -> "write-outside-method"
  | Block_outside_method -> "block-outside-method"
  | Unbalanced_block_end -> "unbalanced-block-end"
  | Unclosed_block _ -> "unclosed-block"
  | Release_without_acquire _ -> "release-without-acquire"
  | Unreleased_lock _ -> "unreleased-lock"
  | Nested_call _ -> "nested-call"
  | Return_without_call _ -> "return-without-call"
  | Return_mismatch _ -> "return-mismatch"
  | Commit_missing _ -> "commit-missing"

let message = function
  | Duplicate_commit { mid; first } ->
    Printf.sprintf "second commit in one execution of %s (first committed @%d)"
      mid first
  | Uncommitted_mutation { mid; writes } ->
    Printf.sprintf
      "execution of %s wrote %d variable(s) but never committed (legal only \
       for exceptional termination, §4.3)"
      mid writes
  | Commit_outside_method -> "commit outside any method execution"
  | Write_outside_method { var } ->
    Printf.sprintf "write to %s outside any method execution" var
  | Block_outside_method -> "commit block opened outside any method execution"
  | Unbalanced_block_end -> "block-end with no open block"
  | Unclosed_block { opened } ->
    Printf.sprintf "commit block opened @%d never closed" opened
  | Release_without_acquire { lock } ->
    Printf.sprintf "release of %s which is not held" lock
  | Unreleased_lock { lock; acquired } ->
    Printf.sprintf "lock %s (acquired @%d) still held at end of log" lock
      acquired
  | Nested_call { outer } ->
    Printf.sprintf "call while execution of %s is still open" outer
  | Return_without_call { mid } ->
    Printf.sprintf "return from %s with no open call" mid
  | Return_mismatch { expected; got } ->
    Printf.sprintf "return from %s while the open call is %s" got expected
  | Commit_missing { mid; committed } ->
    Printf.sprintf
      "execution of %s has no commit action though %d other execution(s) of \
       it commit — exceptional termination (§4.3) or a missing annotation"
      mid committed

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"

let pp_diag ppf d =
  Fmt.pf ppf "[%a] @%d %s: %s" pp_severity d.severity d.position
    (Tid.to_string d.tid) (message d.kind)

let pp ppf r =
  if r.diags = [] then Fmt.pf ppf "clean (%d events)" r.events
  else
    Fmt.pf ppf "@[<v>%d error(s), %d warning(s) in %d events:@ %a@]" r.errors
      r.warnings r.events
      Fmt.(list ~sep:cut pp_diag)
      r.diags
