(** Vector clocks with the FastTrack epoch optimization (Flanagan & Freund,
    PLDI 2009), the timestamp machinery of {!Racedetect}.

    A clock maps thread identifiers to logical times; [leq] is the
    happens-before order on timestamps.  An {!epoch} is FastTrack's scalar
    compression of a full clock: most variables are only ever accessed in a
    totally ordered fashion, so their last access is adequately described by
    a single [clock@tid] pair, and the O(threads) comparison collapses to one
    integer load ({!epoch_leq}). *)

type t

val create : unit -> t
(** The zero clock. *)

val copy : t -> t
val get : t -> Vyrd_sched.Tid.t -> int

(** [tick t tid] increments [tid]'s component in place. *)
val tick : t -> Vyrd_sched.Tid.t -> unit

(** [join t u] sets [t] to the pointwise maximum of [t] and [u]. *)
val join : t -> t -> unit

(** Pointwise [<=]: [leq t u] iff the event stamped [t] happens before (or
    equals) the one stamped [u]. *)
val leq : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Epochs} *)

type epoch = { etid : Vyrd_sched.Tid.t; eclock : int }

(** [epoch t tid] is [tid]'s current epoch [get t tid @ tid]. *)
val epoch : t -> Vyrd_sched.Tid.t -> epoch

(** [epoch_leq e t] iff the access stamped [e] happens before the point
    stamped [t] — the O(1) race check. *)
val epoch_leq : epoch -> t -> bool

(** Renders as [c@Tn], the FastTrack paper's notation. *)
val pp_epoch : Format.formatter -> epoch -> unit
