(** FastTrack-style happens-before race detection over a [`Full]-level log.

    The paper's §8 pits refinement checking against dynamic atomicity
    checking, whose lockset phase ({!Vyrd_baselines.Reduction}) is an
    {e approximation}: a variable with no consistent lock discipline is
    flagged whether or not two accesses were ever actually concurrent.  This
    module is the precise side of that comparison — it computes the real
    happens-before relation of one execution from program order plus
    [Acquire]/[Release] edges on each lock, and reports a variable only when
    two accesses to it, at least one a write, are genuinely unordered.  On
    correct subjects it stays silent exactly where the lockset pass raises
    the §8 false alarms, and race-freedom is the precondition under which
    refinement conclusions transfer to weaker memory models (Poetzl &
    Kroening's thread-refinement line).

    Timestamps follow FastTrack (Flanagan & Freund, PLDI 2009): one vector
    clock per thread and per lock, but per-variable state compressed to
    {!Vclock.epoch}s — a full read vector is kept only while reads are
    actually concurrent, so the common same-thread / well-locked access
    patterns check in O(1).

    One structural happens-before edge is added beyond locks: the first
    logged event of a non-main thread inherits the main thread's clock at
    that point.  Thread creation is not itself logged, and the main thread
    initializes every structure before spawning workers, so without this
    edge every initialization write would be reported as racing with the
    first worker access.  (The coop and native harnesses both make the main
    thread quiescent after spawning, so the inherited prefix is sound for
    every log this repository produces.) *)

(** The method execution an access occurred in: the method name and the log
    index of its [Call] event. *)
type meth = { mid : string; call_index : int }

type access = {
  index : int;  (** log position of the access event *)
  tid : Vyrd_sched.Tid.t;
  kind : [ `Read | `Write ];
  meth : meth option;  (** [None] for initialization / daemon accesses *)
}

(** Two accesses to [var], at least one a write, unordered by happens-before.
    [prior] appears earlier in the log than [current]. *)
type race = { var : string; prior : access; current : access }

type result = {
  races : race list;
      (** the first race found per variable, in log order of detection *)
  racy_vars : string list;  (** sorted *)
  events : int;
  variables : int;  (** distinct shared variables seen *)
}

(** {1 Streaming interface} *)

type t

val create : unit -> t

(** [feed t ev] advances the detector by one event.  Events must be fed in
    log order; the detector tracks positions internally. *)
val feed : t -> Vyrd.Event.t -> unit

(** The races found so far. *)
val result : t -> result

(** {1 Whole-log analysis} *)

(** [analyze log] streams [log] through a fresh detector.

    @raise Invalid_argument if [log] was recorded below level [`Full]: a log
    without [Read]/[Acquire]/[Release] events would make every lock
    discipline invisible and the verdict meaningless. *)
val analyze : Vyrd.Log.t -> result

(** [racy_methods r] is the sorted list of method names involved in at least
    one reported race. *)
val racy_methods : result -> string list

val pp_access : Format.formatter -> access -> unit
val pp_race : Format.formatter -> race -> unit
val pp : Format.formatter -> result -> unit
