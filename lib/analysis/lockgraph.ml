open Vyrd
module Tid = Vyrd_sched.Tid

type meth = { mid : string; call_index : int }

type witness = {
  index : int;
  tid : Tid.t;
  held : string list;
  meth : meth option;
}

type edge = { src : string; dst : string; witnesses : witness list }
type cycle = { locks : string list; edges : edge list; chosen : witness list }

type result = {
  cycles : cycle list;
  locks : int;
  edges : int;
  acquires : int;
  events : int;
  suppressed_gated : int;
  suppressed_single_thread : int;
  graph : edge list;
}

(* Witnesses per edge: the first acquire per distinct thread, up to this many
   threads.  A thread's held set at a given acquire is determined by its own
   program order alone, so "first per tid" is stable under cross-thread
   reordering of the log. *)
let max_witnesses_per_edge = 8

(* Backstop for pathological graphs: stop enumerating once this many
   elementary cycles have been examined. *)
let max_cycles_examined = 4096

(* Per-thread state: held locks innermost-first with reentrancy depth, plus
   the open method execution. *)
type tstate = {
  mutable held : (string * int) list;
  mutable exec : meth option;
}

type estate = {
  mutable witnesses_rev : witness list;
  mutable tids : Tid.t list;  (* distinct tids already witnessed *)
}

type t = {
  threads : (Tid.t, tstate) Hashtbl.t;
  etable : (string * string, estate) Hashtbl.t;
  lock_names : (string, unit) Hashtbl.t;
  mutable acquires : int;
  mutable index : int;
}

let create () =
  {
    threads = Hashtbl.create 16;
    etable = Hashtbl.create 64;
    lock_names = Hashtbl.create 16;
    acquires = 0;
    index = 0;
  }

let state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some s -> s
  | None ->
    let s = { held = []; exec = None } in
    Hashtbl.replace t.threads tid s;
    s

let add_edge t ~src ~dst w =
  let e =
    match Hashtbl.find_opt t.etable (src, dst) with
    | Some e -> e
    | None ->
      let e = { witnesses_rev = []; tids = [] } in
      Hashtbl.replace t.etable (src, dst) e;
      e
  in
  if
    (not (List.mem w.tid e.tids))
    && List.length e.tids < max_witnesses_per_edge
  then begin
    e.tids <- w.tid :: e.tids;
    e.witnesses_rev <- w :: e.witnesses_rev
  end

let feed t ev =
  let index = t.index in
  t.index <- index + 1;
  match ev with
  | Event.Call { tid; mid; _ } ->
    (state t tid).exec <- Some { mid; call_index = index }
  | Event.Return { tid; _ } -> (state t tid).exec <- None
  | Event.Acquire { tid; lock } -> (
    t.acquires <- t.acquires + 1;
    Hashtbl.replace t.lock_names lock ();
    let s = state t tid in
    match List.assoc_opt lock s.held with
    | Some n ->
      (* reentrant: the lock is already held, so no new ordering arises *)
      s.held <- (lock, n + 1) :: List.remove_assoc lock s.held
    | None ->
      let held = List.map fst s.held in
      let w = { index; tid; held; meth = s.exec } in
      List.iter (fun src -> add_edge t ~src ~dst:lock w) held;
      s.held <- (lock, 1) :: s.held)
  | Event.Release { tid; lock } -> (
    let s = state t tid in
    match List.assoc_opt lock s.held with
    | Some n when n > 1 ->
      s.held <- (lock, n - 1) :: List.remove_assoc lock s.held
    | Some _ -> s.held <- List.remove_assoc lock s.held
    | None -> () (* unmatched release is the linter's business, not ours *))
  | Event.Commit _ | Event.Write _ | Event.Read _ | Event.Block_begin _
  | Event.Block_end _ -> ()

(* --- cycle enumeration --------------------------------------------------- *)

(* Tarjan's strongly-connected components over the lock graph. *)
let sccs nodes succ =
  let n = Array.length nodes in
  let idx_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i l -> Hashtbl.replace idx_of l i) nodes;
  let index = ref 0 in
  let stack = ref [] in
  let on_stack = Array.make n false in
  let indices = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let comp = Array.make n (-1) in
  let ncomp = ref 0 in
  let rec strong v =
    indices.(v) <- !index;
    lowlink.(v) <- !index;
    incr index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun wl ->
        let w = Hashtbl.find idx_of wl in
        if indices.(w) < 0 then begin
          strong w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) indices.(w))
      (succ nodes.(v));
    if lowlink.(v) = indices.(v) then begin
      let c = !ncomp in
      incr ncomp;
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- c;
          if w <> v then pop ()
        | [] -> ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if indices.(v) < 0 then strong v
  done;
  comp

(* Every elementary cycle, each enumerated exactly once: a cycle is rooted at
   its smallest node (in the sorted order of [nodes]) and the DFS only visits
   larger nodes, all within one SCC. *)
let elementary_cycles nodes succ =
  let n = Array.length nodes in
  let idx_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i l -> Hashtbl.replace idx_of l i) nodes;
  let comp = sccs nodes succ in
  let cycles = ref [] in
  let examined = ref 0 in
  let truncated = ref false in
  let on_path = Array.make n false in
  let rec dfs start path v =
    if !examined < max_cycles_examined then
      List.iter
        (fun wl ->
          let w = Hashtbl.find idx_of wl in
          if comp.(w) = comp.(start) then
            if w = start then begin
              incr examined;
              if !examined <= max_cycles_examined then
                cycles := List.rev path :: !cycles
              else truncated := true
            end
            else if w > start && not on_path.(w) then begin
              on_path.(w) <- true;
              dfs start (w :: path) w;
              on_path.(w) <- false
            end)
        (succ nodes.(v))
  in
  for s = 0 to n - 1 do
    on_path.(s) <- true;
    dfs s [ s ] s;
    on_path.(s) <- false
  done;
  (List.rev_map (List.map (fun i -> nodes.(i))) !cycles, !truncated)

(* --- witness selection and suppression ----------------------------------- *)

(* A cycle is reportable iff some choice of one witness per edge has
   pairwise-distinct threads (a single thread cannot deadlock with itself —
   our locks are reentrant) and no gate lock: a lock outside the cycle held
   across every chosen witness serializes the whole pattern and makes the
   deadlock interleaving impossible (Goodlock's two classic suppressions). *)
type verdict =
  | Reported of witness list
  | Gated
  | Single_thread

let select_witnesses cycle_locks (edges : edge list) =
  let in_cycle l = List.mem l cycle_locks in
  let found_distinct = ref false in
  let rec go acc_tids acc_gates acc_ws = function
    | [] ->
      found_distinct := true;
      if acc_gates = [] then Some (List.rev acc_ws) else None
    | e :: rest ->
      List.fold_left
        (fun found w ->
          match found with
          | Some _ -> found
          | None ->
            if List.mem w.tid acc_tids then None
            else
              let gates =
                match acc_ws with
                | [] -> List.filter (fun l -> not (in_cycle l)) w.held
                | _ -> List.filter (fun l -> List.mem l w.held) acc_gates
              in
              go (w.tid :: acc_tids) gates (w :: acc_ws) rest)
        None e.witnesses
  in
  match go [] [] [] edges with
  | Some ws -> Reported ws
  | None -> if !found_distinct then Gated else Single_thread

(* --- results ------------------------------------------------------------- *)

let result t =
  let edge_list =
    Hashtbl.fold
      (fun (src, dst) e acc ->
        { src; dst; witnesses = List.rev e.witnesses_rev } :: acc)
      t.etable []
    |> List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst))
  in
  let nodes =
    Hashtbl.fold (fun l () acc -> l :: acc) t.lock_names []
    |> List.sort compare |> Array.of_list
  in
  let succ_tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt succ_tbl e.src) in
      Hashtbl.replace succ_tbl e.src (e.dst :: prev))
    (List.rev edge_list);
  let succ l = Option.value ~default:[] (Hashtbl.find_opt succ_tbl l) in
  let raw_cycles, _truncated = elementary_cycles nodes succ in
  let edge_of src dst = List.find (fun e -> e.src = src && e.dst = dst) edge_list in
  let cycles = ref [] in
  let gated = ref 0 in
  let single = ref 0 in
  List.iter
    (fun locks ->
      let k = List.length locks in
      let edges =
        List.mapi
          (fun i src -> edge_of src (List.nth locks ((i + 1) mod k)))
          locks
      in
      match select_witnesses locks edges with
      | Reported chosen -> cycles := { locks; edges; chosen } :: !cycles
      | Gated -> incr gated
      | Single_thread -> incr single)
    raw_cycles;
  let cycles =
    List.sort (fun (a : cycle) (b : cycle) -> compare a.locks b.locks) !cycles
  in
  {
    cycles;
    locks = Array.length nodes;
    edges = List.length edge_list;
    acquires = t.acquires;
    events = t.index;
    suppressed_gated = !gated;
    suppressed_single_thread = !single;
    graph = edge_list;
  }

(* Unlike {!Racedetect.analyze} this accepts logs of any level: a log below
   [`Full] carries no lock events, so the graph is empty and the verdict
   trivially clean — callers that need the stronger guarantee check
   [result.acquires] or the log level themselves. *)
let analyze log =
  let t = create () in
  Log.iter (feed t) log;
  result t

let ok r = r.cycles = []

let cyclic_locks r =
  List.concat_map (fun (c : cycle) -> c.locks) r.cycles
  |> List.sort_uniq compare

let pp_witness ppf w =
  Fmt.pf ppf "%s @%d holding {%s}%a" (Tid.to_string w.tid) w.index
    (String.concat ", " (List.sort compare w.held))
    Fmt.(option (fun ppf m -> pf ppf " (in %s@%d)" m.mid m.call_index))
    w.meth

let pp_cycle ppf (c : cycle) =
  let k = List.length c.locks in
  Fmt.pf ppf "@[<v2>potential deadlock: %s:@ %a@]"
    (String.concat " -> " (c.locks @ [ List.hd c.locks ]))
    Fmt.(list ~sep:cut (fun ppf (i, (e : edge), w) ->
        pf ppf "edge %d/%d %s -> %s: %a" (i + 1) k e.src e.dst pp_witness w))
    (List.mapi (fun i (e, w) -> (i, e, w)) (List.combine c.edges c.chosen))

let pp ppf r =
  if r.cycles = [] then
    Fmt.pf ppf
      "no lock-order cycles (%d locks, %d edges, %d acquires in %d events; \
       %d gated, %d single-thread suppressed)"
      r.locks r.edges r.acquires r.events r.suppressed_gated
      r.suppressed_single_thread
  else
    Fmt.pf ppf "@[<v>%d potential deadlock cycle(s) over %d locks:@ %a@]"
      (List.length r.cycles) r.locks
      Fmt.(list ~sep:cut pp_cycle)
      r.cycles
