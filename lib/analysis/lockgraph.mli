(** Goodlock-style lock-order-graph analysis: deadlock prediction from one
    non-deadlocking [`Full]-level run.

    {!Vyrd_sched.Explore.stats} can prove a workload deadlocks under {e some}
    schedule, but only by finding that schedule.  This pass answers the same
    question from a single healthy trace: it builds the directed graph whose
    edge [l1 -> l2] records that some thread acquired [l2] while holding
    [l1], and every cycle in that graph is a candidate deadlock — threads
    acquiring the cycle's locks in opposite orders could block each other
    under a different interleaving (Havelund's Goodlock; Bensalem &
    Havelund's refinement of it).

    Two classic suppressions keep the report precise:

    - {b single thread}: if no choice of one witness per edge uses
      pairwise-distinct threads, only one thread ever ordered the locks both
      ways — a thread cannot deadlock with itself (our mutexes are
      reentrant);
    - {b gate lock}: if every such choice shares a lock {e outside} the
      cycle held across all chosen acquires, that outer lock serializes the
      pattern and the deadlocking interleaving is impossible.

    Every reported cycle carries one concrete witness per edge — thread, log
    index, the full held lockset and the enclosing method execution — so the
    report is actionable without re-running the program. *)

type meth = { mid : string; call_index : int }

(** A concrete acquisition of [dst] while the thread held [held] (which
    contains the edge's [src]). *)
type witness = {
  index : int;  (** log position of the [Acquire] *)
  tid : Vyrd_sched.Tid.t;
  held : string list;  (** locks held at that moment, excluding [dst] *)
  meth : meth option;  (** [None] for initialization / daemon acquires *)
}

(** [src -> dst] with up to one witness per distinct thread (bounded). *)
type edge = { src : string; dst : string; witnesses : witness list }

(** An elementary cycle that survived both suppressions.  [locks] starts at
    the lexicographically smallest lock; [edges] are the cycle's edges in
    order ([locks.(i) -> locks.(i+1 mod k)]); [chosen] is one witness per
    edge with pairwise-distinct threads and no common gate lock. *)
type cycle = { locks : string list; edges : edge list; chosen : witness list }

type result = {
  cycles : cycle list;  (** sorted by lock list *)
  locks : int;  (** distinct locks seen *)
  edges : int;  (** distinct ordered lock pairs *)
  acquires : int;  (** [Acquire] events seen *)
  events : int;
  suppressed_gated : int;
  suppressed_single_thread : int;
  graph : edge list;  (** the full edge set, sorted by [(src, dst)] *)
}

(** {1 Streaming interface} *)

type t

val create : unit -> t

(** [feed t ev] advances the analysis by one event.  Events must arrive in
    log order; positions are tracked internally.  Reentrant acquires add no
    edges; unmatched releases are ignored (the linter reports those). *)
val feed : t -> Vyrd.Event.t -> unit

(** The graph and surviving cycles accumulated so far. *)
val result : t -> result

(** {1 Whole-log analysis} *)

(** [analyze log] streams [log] through a fresh analysis.  Logs of any level
    are accepted: below [`Full] no lock events were recorded, so the graph
    is empty and the verdict trivially clean — callers needing the stronger
    guarantee should check [result.acquires] or {!Vyrd.Log.records_reads}. *)
val analyze : Vyrd.Log.t -> result

(** No surviving cycles. *)
val ok : result -> bool

(** Sorted names of every lock on a reported cycle. *)
val cyclic_locks : result -> string list

val pp_witness : Format.formatter -> witness -> unit
val pp_cycle : Format.formatter -> cycle -> unit
val pp : Format.formatter -> result -> unit
