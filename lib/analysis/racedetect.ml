open Vyrd
module Tid = Vyrd_sched.Tid

type meth = { mid : string; call_index : int }

type access = {
  index : int;
  tid : Tid.t;
  kind : [ `Read | `Write ];
  meth : meth option;
}

type race = { var : string; prior : access; current : access }

type result = {
  races : race list;
  racy_vars : string list;
  events : int;
  variables : int;
}

(* FastTrack per-variable read state: a single epoch while reads are totally
   ordered, promoted to a per-thread table (the "read vector") only once two
   reads are actually concurrent. *)
type read_state =
  | No_reads
  | Single of { eclock : int; access : access }
  | Shared of (Tid.t, int * access) Hashtbl.t

type vstate = {
  mutable last_write : (int * access) option;  (* write epoch + its access *)
  mutable reads : read_state;
  mutable reported : bool;  (* one race per variable in the report *)
}

type t = {
  threads : (Tid.t, Vclock.t) Hashtbl.t;
  locks : (string, Vclock.t) Hashtbl.t;
  vars : (string, vstate) Hashtbl.t;
  current : (Tid.t, meth) Hashtbl.t;  (* open method execution per thread *)
  mutable races_rev : race list;
  mutable n_races : int;
  mutable index : int;
}

let create () =
  {
    threads = Hashtbl.create 16;
    locks = Hashtbl.create 16;
    vars = Hashtbl.create 64;
    current = Hashtbl.create 16;
    races_rev = [];
    n_races = 0;
    index = 0;
  }

let thread_clock t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    (* Spawn inheritance: thread creation is not logged, but the main thread
       (tid 0) sets up every structure before spawning workers, so a worker's
       first event happens after everything tid 0 has logged so far. *)
    (if tid <> 0 then
       match Hashtbl.find_opt t.threads 0 with
       | Some c0 -> Vclock.join c c0
       | None -> ());
    Vclock.tick c tid;
    Hashtbl.replace t.threads tid c;
    c

let var_state t var =
  match Hashtbl.find_opt t.vars var with
  | Some v -> v
  | None ->
    let v = { last_write = None; reads = No_reads; reported = false } in
    Hashtbl.replace t.vars var v;
    v

let report t var v prior current =
  if not v.reported then begin
    v.reported <- true;
    t.races_rev <- { var; prior; current } :: t.races_rev;
    t.n_races <- t.n_races + 1
  end

let mk_access t ~index ~tid ~kind =
  { index; tid; kind; meth = Hashtbl.find_opt t.current tid }

let read t tid var index =
  let c = thread_clock t tid in
  let v = var_state t var in
  let a = mk_access t ~index ~tid ~kind:`Read in
  (match v.last_write with
  | Some (wc, wa)
    when wa.tid <> tid
         && not (Vclock.epoch_leq { Vclock.etid = wa.tid; eclock = wc } c) ->
    report t var v wa a
  | _ -> ());
  let myclock = Vclock.get c tid in
  match v.reads with
  | No_reads -> v.reads <- Single { eclock = myclock; access = a }
  | Single { eclock; access } ->
    if
      access.tid = tid
      || Vclock.epoch_leq { Vclock.etid = access.tid; eclock } c
    then v.reads <- Single { eclock = myclock; access = a }
    else begin
      (* two genuinely concurrent reads: promote to a read vector *)
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace tbl access.tid (eclock, access);
      Hashtbl.replace tbl tid (myclock, a);
      v.reads <- Shared tbl
    end
  | Shared tbl -> Hashtbl.replace tbl tid (myclock, a)

let write t tid var index =
  let c = thread_clock t tid in
  let v = var_state t var in
  let a = mk_access t ~index ~tid ~kind:`Write in
  (match v.last_write with
  | Some (wc, wa)
    when wa.tid <> tid
         && not (Vclock.epoch_leq { Vclock.etid = wa.tid; eclock = wc } c) ->
    report t var v wa a
  | _ -> ());
  (match v.reads with
  | No_reads -> ()
  | Single { eclock; access }
    when access.tid <> tid
         && not (Vclock.epoch_leq { Vclock.etid = access.tid; eclock } c) ->
    report t var v access a
  | Single _ -> ()
  | Shared tbl ->
    (* deterministic choice: the racing read earliest in the log *)
    let racing =
      Hashtbl.fold
        (fun rtid ((rc : int), (ra : access)) best ->
          if rtid <> tid && rc > Vclock.get c rtid then
            match best with
            | Some (b : access) when b.index <= ra.index -> best
            | _ -> Some ra
          else best)
        tbl None
    in
    Option.iter (fun ra -> report t var v ra a) racing);
  v.last_write <- Some (Vclock.get c tid, a);
  (* reads ordered before this write can never race with anything later than
     it; drop them so the shared table stays small *)
  match v.reads with
  | No_reads -> ()
  | Single { eclock; access } ->
    if access.tid = tid || eclock <= Vclock.get c access.tid then
      v.reads <- No_reads
  | Shared tbl ->
    let all_before =
      Hashtbl.fold
        (fun rtid (rc, _) acc -> acc && (rtid = tid || rc <= Vclock.get c rtid))
        tbl true
    in
    if all_before then v.reads <- No_reads

let feed t ev =
  let index = t.index in
  t.index <- index + 1;
  match ev with
  | Event.Call { tid; mid; _ } ->
    Hashtbl.replace t.current tid { mid; call_index = index }
  | Event.Return { tid; _ } -> Hashtbl.remove t.current tid
  | Event.Commit _ | Event.Block_begin _ | Event.Block_end _ -> ()
  | Event.Acquire { tid; lock } -> (
    let c = thread_clock t tid in
    match Hashtbl.find_opt t.locks lock with
    | Some l -> Vclock.join c l
    | None -> ())
  | Event.Release { tid; lock } ->
    let c = thread_clock t tid in
    Hashtbl.replace t.locks lock (Vclock.copy c);
    Vclock.tick c tid
  | Event.Read { tid; var } -> read t tid var index
  | Event.Write { tid; var; _ } -> write t tid var index

let result t =
  let races = List.rev t.races_rev in
  {
    races;
    racy_vars = List.sort compare (List.map (fun r -> r.var) races);
    events = t.index;
    variables = Hashtbl.length t.vars;
  }

(* Mirrors Checker.require_view_level (the PR-1 view-on-io guard): analysis
   below its log level would be silently meaningless, so fail fast. *)
let require_full_level ~who log =
  if not (Log.records_reads log) then
    invalid_arg
      (Printf.sprintf
         "%s: happens-before race detection requires a log recorded at level \
          `Full (this log records at `%s); re-record the run with full-level \
          logging"
         who
         (match Log.level log with
         | `None -> "None"
         | `Io -> "Io"
         | `View -> "View"
         | `Full -> "Full"))

let analyze log =
  require_full_level ~who:"Racedetect.analyze" log;
  let t = create () in
  Log.iter (feed t) log;
  result t

let racy_methods r =
  let add acc (a : access) =
    match a.meth with
    | Some { mid; _ } when not (List.mem mid acc) -> mid :: acc
    | _ -> acc
  in
  List.fold_left (fun acc r -> add (add acc r.prior) r.current) [] r.races
  |> List.sort compare

let pp_access ppf a =
  Fmt.pf ppf "%s %s @%d%a" (Tid.to_string a.tid)
    (match a.kind with `Read -> "read" | `Write -> "write")
    a.index
    Fmt.(
      option (fun ppf m -> pf ppf " (in %s@%d)" m.mid m.call_index))
    a.meth

let pp_race ppf r =
  Fmt.pf ppf "@[<h>%s: %a ~ %a@]" r.var pp_access r.prior pp_access r.current

let pp ppf r =
  if r.races = [] then
    Fmt.pf ppf "no races (%d events, %d variables)" r.events r.variables
  else
    Fmt.pf ppf "@[<v>%d racy variable(s) in %d events:@ %a@]"
      (List.length r.races) r.events
      Fmt.(list ~sep:cut pp_race)
      r.races
