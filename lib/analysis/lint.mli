(** Log-discipline linter: static checks of the instrumentation contract of
    paper §4–§5 over a recorded log.

    The refinement checkers trust the instrumentation: one commit action per
    mutating method execution (§4.1), commit blocks properly bracketed
    (§5.2), logged actions attributed to the method execution that performed
    them.  A log that violates the contract does not make the checker crash
    — it makes its verdict quietly meaningless.  This linter makes the
    contract itself checkable:

    - a method execution must not record two [Commit]s, and a mutating
      execution (one with [Write]s) that commits nothing is suspicious
      (legal only for exceptional terminations, §4.3 — reported as a
      warning); on [`Io]-level logs, where no [Write]s exist, the same
      discipline is checked per method: an execution with no commit while
      other executions of the same [mid] do commit is flagged
      ({!Commit_missing});
    - [Block_begin]/[Block_end] must be balanced and properly nested per
      thread, and every block opened inside a method execution must close
      before its [Return];
    - a thread that makes method calls must not record [Commit], [Write] or
      block brackets between a [Return] and its next [Call]; threads that
      never call (the main thread's initialization, compression/flush
      daemons) are exempt — their writes are the coarse-grained logging of
      §6.2;
    - a [Release] must match a held [Acquire] (reentrancy counted), and
      locks still held at the end of the log are reported;
    - [Return]s must match their [Call] ([mid] and presence).

    Each violation is a typed {!diag} with a {!severity} and the log
    position it anchors to.  Diagnostics are emitted in log order (end-of-log
    findings last, sorted), so output is deterministic.  The linter accepts
    logs of any level and checks whatever event classes are present. *)

type severity = Error | Warning

type kind =
  | Duplicate_commit of { mid : string; first : int }
      (** a second [Commit] inside one method execution; [first] is the log
          position of the execution's first commit *)
  | Uncommitted_mutation of { mid : string; writes : int }
      (** execution wrote [writes] variables but never committed *)
  | Commit_outside_method
  | Write_outside_method of { var : string }
  | Block_outside_method
  | Unbalanced_block_end  (** [Block_end] with no open [Block_begin] *)
  | Unclosed_block of { opened : int }
      (** a [Block_begin] (at [opened]) never closed — reported at the
          [Return] that abandoned it, or at the end of the log *)
  | Release_without_acquire of { lock : string }
  | Unreleased_lock of { lock : string; acquired : int }
  | Nested_call of { outer : string }
      (** [Call] while [outer]'s execution is still open on the thread *)
  | Return_without_call of { mid : string }
  | Return_mismatch of { expected : string; got : string }
  | Commit_missing of { mid : string; committed : int }
      (** a completed execution of [mid] recorded no [Commit] although
          [committed] other execution(s) of the same method do commit —
          exceptional termination (§4.3) or a missing annotation.  Needs no
          [Write] events, so this is the commit-discipline signal that
          works on [`Io]-level logs; emitted only when the execution also
          has no writes (otherwise {!Uncommitted_mutation} already fired) *)

type diag = {
  position : int;  (** log index the diagnostic anchors to *)
  tid : Vyrd_sched.Tid.t;
  severity : severity;
  kind : kind;
}

type result = {
  diags : diag list;
  errors : int;
  warnings : int;
  events : int;
}

(** {1 Streaming interface} *)

type t

val create : unit -> t

(** [feed t ev] advances the linter by one event (log order; positions are
    tracked internally).  Outside-method diagnostics for a thread are held
    back until that thread's first [Call] proves it is not a daemon thread;
    {!finish} restores log order and drops the buffers of threads that never
    called. *)
val feed : t -> Vyrd.Event.t -> unit

(** End-of-log findings (open blocks, held locks) plus everything streamed so
    far.  [check log] is [create]/[feed]/[finish] and the two agree exactly. *)
val finish : t -> result

(** {1 Whole-log analysis} *)

val check : Vyrd.Log.t -> result

(** No errors (warnings allowed). *)
val ok : result -> bool

(** Stable kebab-case identifier for machine-readable output, e.g.
    ["duplicate-commit"]. *)
val kind_id : kind -> string

val message : kind -> string
val pp_severity : Format.formatter -> severity -> unit
val pp_diag : Format.formatter -> diag -> unit
val pp : Format.formatter -> result -> unit
