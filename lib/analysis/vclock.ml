module Tid = Vyrd_sched.Tid

(* Thread ids are small consecutive integers (Tid.t = int, 0 = main), so a
   growable flat array beats any map; absent components read as 0. *)
type t = { mutable clocks : int array }

let create () = { clocks = [||] }

let ensure t n =
  if Array.length t.clocks <= n then begin
    let a = Array.make (max (n + 1) ((2 * Array.length t.clocks) + 4)) 0 in
    Array.blit t.clocks 0 a 0 (Array.length t.clocks);
    t.clocks <- a
  end

let get t i = if i >= 0 && i < Array.length t.clocks then t.clocks.(i) else 0

let set t i v =
  ensure t i;
  t.clocks.(i) <- v

let tick t i = set t i (get t i + 1)
let copy t = { clocks = Array.copy t.clocks }
let join t u = Array.iteri (fun i v -> if v > get t i then set t i v) u.clocks

let leq t u =
  let n = Array.length t.clocks in
  let rec go i = i >= n || (t.clocks.(i) <= get u i && go (i + 1)) in
  go 0

let pp ppf t =
  let components =
    Array.to_list (Array.mapi (fun i v -> (i, v)) t.clocks)
    |> List.filter (fun (_, v) -> v > 0)
  in
  Fmt.pf ppf "@[<h><%a>@]"
    Fmt.(list ~sep:comma (fun ppf (i, v) -> pf ppf "%s:%d" (Tid.to_string i) v))
    components

type epoch = { etid : Tid.t; eclock : int }

let epoch t tid = { etid = tid; eclock = get t tid }
let epoch_leq e t = e.eclock <= get t e.etid
let pp_epoch ppf e = Fmt.pf ppf "%d@%s" e.eclock (Tid.to_string e.etid)
