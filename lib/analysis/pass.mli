(** Unified incremental interface over the static analyses, so they can run
    {e in-service} — attached to a checker farm lane or a vyrdd session —
    instead of only offline via [vyrd_check analyze].

    A pass consumes one event at a time ([feed], log order) and produces a
    bounded {!summary} of typed diagnostics at [finish].  The three analyses
    behind it are {!Lint} (instrumentation contract), {!Lockgraph}
    (deadlock-potential lock-order cycles) and {!Racedetect} (happens-before
    data races); {!for_level} picks the subset that is meaningful for a log
    level — race detection needs [`Full] lock events, the other two degrade
    gracefully on sparser logs. *)

type severity = [ `Error | `Warning ]

type diag = {
  pass : string;  (** the pass that produced it, e.g. ["lockgraph"] *)
  id : string;  (** stable kebab-case kind, e.g. ["lock-order-cycle"] *)
  severity : severity;
  position : int;  (** log index the diagnostic anchors to *)
  tid : Vyrd_sched.Tid.t option;
  text : string;  (** rendered, single line *)
}

type summary = {
  pass : string;
  events : int;
  errors : int;  (** exact, even when [diags] is truncated *)
  warnings : int;  (** exact, even when [diags] is truncated *)
  diags : diag list;  (** at most {!max_diags} *)
  dropped : int;  (** diagnostics beyond the cap, counted not kept *)
}

type t = {
  name : string;
  feed : Vyrd.Event.t -> unit;
  finish : unit -> summary;  (** call once, after the last [feed] *)
}

(** Diagnostics kept per summary; counts stay exact beyond it. *)
val max_diags : int

(** [summarize ~pass ~events diags] builds a bounded {!summary}: exact
    error/warning counts, at most {!max_diags} diagnostics kept, the rest
    counted in [dropped].  Exposed so external passes (the monitor layer)
    obey the same bound. *)
val summarize : pass:string -> events:int -> diag list -> summary

val racedetect : unit -> t
val lint : unit -> t
val lockgraph : unit -> t

(** The passes meaningful at [level]: lint + lockgraph always, racedetect
    only at [`Full]. *)
val for_level : Vyrd.Log.level -> t list

(** All three passes ([for_level `Full]). *)
val all : unit -> t list

(** No errors (warnings allowed). *)
val clean : summary -> bool

val pp_diag : Format.formatter -> diag -> unit
val pp_summary : Format.formatter -> summary -> unit
